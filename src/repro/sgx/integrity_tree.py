"""Counter-based integrity tree over the protected region.

An 8-ary tree in the style of SGX's MEE (Gueron [28]):

* every 64-byte data block has a 64-bit **version counter** and a MAC that
  binds ``(block address, version, ciphertext)``;
* level-1 nodes hold a counter and a MAC over their 8 children's version
  counters; higher levels repeat the construction over the counters below;
* the single top-level counter is mirrored **on-chip** — that mirror is
  the root of trust that defeats replay of a wholesale DRAM snapshot.

All metadata except the on-chip root really lives in the DRAM model, so a
test can flip any DRAM byte and watch verification fail.  Every metadata
access is charged to the backing device (latency + energy), which is what
makes the MEE-cache ablation measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SecurityError
from repro.sgx.cache import MEECache
from repro.sgx.crypto import MacKey, pack_counter, unpack_counter

BLOCK_SIZE = 64
ARITY = 8
COUNTER_BYTES = 8
MAC_BYTES = 8


@dataclass(frozen=True)
class TreeGeometry:
    """Address layout of data + metadata inside the protected region.

    Layout (all offsets relative to the region base)::

        [ data blocks | leaf versions | leaf MACs | per-level counters+MACs ]
    """

    region_base: int
    data_blocks: int
    level_counts: Tuple[int, ...]

    @classmethod
    def for_data_size(cls, region_base: int, data_size: int) -> "TreeGeometry":
        """Compute geometry for ``data_size`` bytes of protected data."""
        if data_size <= 0:
            raise SecurityError("protected data size must be positive")
        blocks = -(-data_size // BLOCK_SIZE)
        counts: List[int] = []
        nodes = -(-blocks // ARITY)
        while True:
            counts.append(nodes)
            if nodes == 1:
                break
            nodes = -(-nodes // ARITY)
        return cls(region_base=region_base, data_blocks=blocks, level_counts=tuple(counts))

    @property
    def levels(self) -> int:
        return len(self.level_counts)

    # --- offsets -------------------------------------------------------------

    @property
    def data_offset(self) -> int:
        return self.region_base

    @property
    def versions_offset(self) -> int:
        return self.region_base + self.data_blocks * BLOCK_SIZE

    @property
    def leaf_macs_offset(self) -> int:
        return self.versions_offset + self.data_blocks * COUNTER_BYTES

    def level_offset(self, level: int) -> int:
        """Offset of level ``level`` (1-based) counter+MAC records."""
        if not 1 <= level <= self.levels:
            raise SecurityError(f"level {level} out of range 1..{self.levels}")
        offset = self.leaf_macs_offset + self.data_blocks * MAC_BYTES
        for lower in range(1, level):
            offset += self.level_counts[lower - 1] * (COUNTER_BYTES + MAC_BYTES)
        return offset

    @property
    def total_size(self) -> int:
        """Bytes of region consumed by data plus all metadata."""
        metadata = self.data_blocks * (COUNTER_BYTES + MAC_BYTES)
        metadata += sum(count * (COUNTER_BYTES + MAC_BYTES) for count in self.level_counts)
        return self.data_blocks * BLOCK_SIZE + metadata

    def block_address(self, block: int) -> int:
        self._check_block(block)
        return self.data_offset + block * BLOCK_SIZE

    def version_address(self, block: int) -> int:
        self._check_block(block)
        return self.versions_offset + block * COUNTER_BYTES

    def leaf_mac_address(self, block: int) -> int:
        self._check_block(block)
        return self.leaf_macs_offset + block * MAC_BYTES

    def node_address(self, level: int, index: int) -> int:
        if not 0 <= index < self.level_counts[level - 1]:
            raise SecurityError(f"node index {index} out of range at level {level}")
        return self.level_offset(level) + index * (COUNTER_BYTES + MAC_BYTES)

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.data_blocks:
            raise SecurityError(f"block {block} out of range 0..{self.data_blocks - 1}")


class IntegrityTree:
    """Tree walks (verify) and updates (write) with access accounting.

    ``device`` must expose ``read(addr, n) -> (bytes, latency_ps)`` and
    ``write(addr, data) -> latency_ps`` (both DRAM and NVM devices do).
    """

    def __init__(
        self,
        geometry: TreeGeometry,
        device,
        mac_key: MacKey,
        cache: Optional[MEECache] = None,
    ) -> None:
        self.geometry = geometry
        self.device = device
        self.mac_key = mac_key
        self.cache = cache
        self.root_counter = 0  # the on-chip trusted mirror
        self.metadata_accesses = 0
        self.metadata_latency_ps = 0

    # --- raw metadata IO -------------------------------------------------------

    def _read(self, address: int, length: int) -> bytes:
        data, latency = self.device.read(address, length)
        self.metadata_accesses += 1
        self.metadata_latency_ps += latency
        return data

    def _write(self, address: int, data: bytes) -> None:
        latency = self.device.write(address, data)
        self.metadata_accesses += 1
        self.metadata_latency_ps += latency

    # --- counters -----------------------------------------------------------------

    def read_version(self, block: int) -> int:
        """Leaf version counter of ``block`` (cache-aware, unverified)."""
        if self.cache is not None:
            cached = self.cache.lookup((0, block))
            if cached is not None:
                return cached
        value = unpack_counter(self._read(self.geometry.version_address(block), COUNTER_BYTES))
        return value

    def _children_of(self, level: int, index: int) -> bytes:
        """Concatenated counters of the children of node (level, index)."""
        first = index * ARITY
        if level == 1:
            # children are leaf versions
            last = min(first + ARITY, self.geometry.data_blocks)
            raw = self._read(
                self.geometry.version_address(first), (last - first) * COUNTER_BYTES
            )
        else:
            last = min(first + ARITY, self.geometry.level_counts[level - 2])
            parts = []
            for child in range(first, last):
                record = self._read(
                    self.geometry.node_address(level - 1, child), COUNTER_BYTES
                )
                parts.append(record)
            raw = b"".join(parts)
        # pad missing children with zero counters so the MAC input width is fixed
        missing = ARITY - (last - first)
        return raw + pack_counter(0) * missing

    def _node_mac_input(self, level: int, index: int, counter: int, children: bytes) -> tuple:
        label = f"node:{level}:{index}".encode("ascii")
        return (label, pack_counter(counter), children)

    # --- verification walk ------------------------------------------------------------

    def verify_block(self, block: int, ciphertext: bytes) -> int:
        """Verify ``ciphertext`` of ``block``; return its trusted version.

        Walks the tree from the leaf upward, stopping early at a cache hit
        (cached counters are trusted).  Raises
        :class:`~repro.errors.SecurityError` on any mismatch.
        """
        geometry = self.geometry
        version_cached = None
        if self.cache is not None:
            version_cached = self.cache.lookup((0, block))
        version = (
            version_cached
            if version_cached is not None
            else unpack_counter(self._read(geometry.version_address(block), COUNTER_BYTES))
        )
        stored_mac = self._read(geometry.leaf_mac_address(block), MAC_BYTES)
        address = geometry.block_address(block)
        if not self.mac_key.verify(
            stored_mac, b"data", pack_counter(address), pack_counter(version), ciphertext
        ):
            raise SecurityError(f"data MAC mismatch on block {block}")
        if version_cached is not None:
            return version  # the version itself was trusted; done
        self._verify_counters_upward(block, version)
        if self.cache is not None:
            self.cache.insert((0, block), version)
        return version

    def _verify_counters_upward(self, block: int, leaf_version: int) -> None:
        geometry = self.geometry
        child_index = block
        for level in range(1, geometry.levels + 1):
            index = child_index // ARITY
            cached = self.cache.lookup((level, index)) if self.cache is not None else None
            if cached is not None:
                counter = cached
                trusted = True
            else:
                counter = unpack_counter(
                    self._read(geometry.node_address(level, index), COUNTER_BYTES)
                )
                trusted = False
            children = self._children_of(level, index)
            stored_mac = self._read(
                geometry.node_address(level, index) + COUNTER_BYTES, MAC_BYTES
            )
            if not self.mac_key.verify(
                stored_mac, *self._node_mac_input(level, index, counter, children)
            ):
                raise SecurityError(f"tree MAC mismatch at level {level} node {index}")
            if level == 1:
                # confirm the leaf version we used is the one under this MAC
                offset = (block % ARITY) * COUNTER_BYTES
                covered = unpack_counter(children[offset : offset + COUNTER_BYTES])
                if covered != leaf_version:
                    raise SecurityError(f"leaf version replay on block {block}")
            if trusted:
                return  # cached counters are inside the security perimeter
            if self.cache is not None:
                self.cache.insert((level, index), counter)
            if level == geometry.levels:
                if counter != self.root_counter:
                    raise SecurityError(
                        f"root counter mismatch: DRAM={counter} on-chip={self.root_counter}"
                    )
                return
            child_index = index

    # --- update walk -----------------------------------------------------------------------

    def update_block(self, block: int, new_version: int, ciphertext: bytes) -> None:
        """Install a new version + MAC for ``block`` and bump the tree.

        The caller has already written the ciphertext to the data area;
        this routine writes the leaf metadata and re-MACs every node on
        the path to the root, bumping each counter (and the on-chip root).
        """
        geometry = self.geometry
        self._write(geometry.version_address(block), pack_counter(new_version))
        address = geometry.block_address(block)
        leaf_mac = self.mac_key.tag(
            b"data", pack_counter(address), pack_counter(new_version), ciphertext
        )
        self._write(geometry.leaf_mac_address(block), leaf_mac)
        if self.cache is not None:
            self.cache.insert((0, block), new_version)

        child_index = block
        for level in range(1, geometry.levels + 1):
            index = child_index // ARITY
            node_address = geometry.node_address(level, index)
            counter = unpack_counter(self._read(node_address, COUNTER_BYTES)) + 1
            self._write(node_address, pack_counter(counter))
            children = self._children_of(level, index)
            mac = self.mac_key.tag(*self._node_mac_input(level, index, counter, children))
            self._write(node_address + COUNTER_BYTES, mac)
            if self.cache is not None:
                self.cache.insert((level, index), counter)
            child_index = index
        self.root_counter += 1

    # --- initialization ------------------------------------------------------------------------

    def initialize(self, block_ciphertext=None) -> None:
        """Write a consistent version-0 metadata state (region setup).

        Every leaf version is 0 with a valid MAC over the block's initial
        ciphertext, every node counter is 0 with a valid MAC over its
        children — so the very first verified read of an untouched block
        succeeds.  ``block_ciphertext(block) -> bytes`` supplies the
        initial ciphertext of each block (the MEE passes encrypted
        zeros); by default the raw zero block is assumed.
        """
        geometry = self.geometry
        zero_block = bytes(BLOCK_SIZE)
        for block in range(geometry.data_blocks):
            self._write(geometry.version_address(block), pack_counter(0))
            address = geometry.block_address(block)
            ciphertext = (
                block_ciphertext(block) if block_ciphertext is not None else zero_block
            )
            mac = self.mac_key.tag(
                b"data", pack_counter(address), pack_counter(0), ciphertext
            )
            self._write(geometry.leaf_mac_address(block), mac)
        for level in range(1, geometry.levels + 1):
            for index in range(geometry.level_counts[level - 1]):
                node_address = geometry.node_address(level, index)
                self._write(node_address, pack_counter(0))
                children = self._children_of(level, index)
                mac = self.mac_key.tag(*self._node_mac_input(level, index, 0, children))
                self._write(node_address + COUNTER_BYTES, mac)
        self.root_counter = 0
        if self.cache is not None:
            self.cache.flush()
