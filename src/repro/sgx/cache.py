"""The on-chip MEE metadata cache.

"To alleviate performance overheads, the MEE is equipped with an internal
'MEE cache' that stores the metadata of the authentication tree"
(Sec. 6.2).  The cache is trusted (it is inside the security perimeter),
so a hit on a tree node *terminates* the verification walk — the cached
counter was verified when it was brought in.

A small set-associative LRU cache keyed by (level, index).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.errors import SecurityError

CacheKey = Tuple[int, int]  # (tree level, node index)


class MEECache:
    """Set-associative LRU cache of verified tree-node counters."""

    def __init__(self, sets: int = 32, ways: int = 8) -> None:
        if sets <= 0 or ways <= 0:
            raise SecurityError("cache geometry must be positive")
        self.sets = sets
        self.ways = ways
        self._lines: Dict[int, OrderedDict] = {index: OrderedDict() for index in range(sets)}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        """Total number of nodes the cache can hold."""
        return self.sets * self.ways

    def _set_of(self, key: CacheKey) -> OrderedDict:
        # Explicit mix, not hash(): the set mapping — and with it the
        # simulated eviction pattern — must not depend on the
        # interpreter's hash algorithm.
        level, index = key
        return self._lines[(level * 1000003 + index) % self.sets]

    def lookup(self, key: CacheKey) -> Optional[int]:
        """Return the cached counter for ``key``, or None on a miss."""
        line = self._set_of(key)
        if key in line:
            line.move_to_end(key)
            self.hits += 1
            return line[key]
        self.misses += 1
        return None

    def insert(self, key: CacheKey, counter: int) -> None:
        """Cache a verified counter, evicting LRU within the set."""
        line = self._set_of(key)
        if key in line:
            line.move_to_end(key)
            line[key] = counter
            return
        if len(line) >= self.ways:
            line.popitem(last=False)
            self.evictions += 1
        line[key] = counter

    def invalidate(self, key: CacheKey) -> None:
        """Drop one entry (used when a write bumps a counter)."""
        self._set_of(key).pop(key, None)

    def flush(self) -> None:
        """Drop everything (MEE power cycle)."""
        for line in self._lines.values():
            line.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(line) for line in self._lines.values())

    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
