"""Stdlib crypto primitives for the MEE model.

The real MEE uses AES-CTR encryption and a Carter-Wegman MAC keyed from
fuses.  We need the same *structure* — deterministic keystream addressed
by (spatial address, version counter), and a keyed tamper-evident tag —
and build both from HMAC-SHA256, which the Python standard library
provides.  The security argument of the paper (confidentiality, integrity,
freshness for the context while in DRAM) maps one-to-one onto these
primitives.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

from repro.errors import SecurityError

MAC_LENGTH = 8  # bytes; SGX's MEE uses 56-bit MACs, we round to 8 bytes
_DIGEST_SIZE = hashlib.sha256().digest_size


def derive_key(master: bytes, label: str) -> bytes:
    """Domain-separated subkey derivation (encryption vs MAC vs tree)."""
    if not master:
        raise SecurityError("empty master key")
    return hmac.new(master, label.encode("utf-8"), hashlib.sha256).digest()


class CtrCipher:
    """Counter-mode cipher: keystream = PRF(key, address || version || i).

    Encryption and decryption are the same XOR operation.  Using the
    (address, version) pair as the nonce gives spatial *and* temporal
    uniqueness: rewriting the same block with a bumped version produces an
    unrelated ciphertext, which is what defeats known-plaintext replay.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise SecurityError("cipher key too short")
        self._key = key

    def _keystream(self, address: int, version: int, length: int) -> bytes:
        blocks = []
        for i in range((length + _DIGEST_SIZE - 1) // _DIGEST_SIZE):
            seed = struct.pack(">QQI", address, version, i)
            blocks.append(hmac.new(self._key, seed, hashlib.sha256).digest())
        return b"".join(blocks)[:length]

    def encrypt(self, address: int, version: int, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` bound to ``(address, version)``."""
        stream = self._keystream(address, version, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    def decrypt(self, address: int, version: int, ciphertext: bytes) -> bytes:
        """Decrypt; identical to :meth:`encrypt` in counter mode."""
        return self.encrypt(address, version, ciphertext)


class MacKey:
    """Keyed MAC producing :data:`MAC_LENGTH`-byte tags."""

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise SecurityError("MAC key too short")
        self._key = key

    def tag(self, *parts: bytes) -> bytes:
        """MAC over the concatenation of ``parts`` (length-prefixed)."""
        mac = hmac.new(self._key, b"", hashlib.sha256)
        for part in parts:
            mac.update(struct.pack(">I", len(part)))
            mac.update(part)
        return mac.digest()[:MAC_LENGTH]

    def verify(self, expected: bytes, *parts: bytes) -> bool:
        """Constant-time comparison of ``expected`` against the fresh tag."""
        return hmac.compare_digest(expected, self.tag(*parts))


def pack_counter(value: int) -> bytes:
    """Serialize a 64-bit counter for MAC input / DRAM storage."""
    return struct.pack(">Q", value & ((1 << 64) - 1))


def unpack_counter(data: bytes) -> int:
    """Inverse of :func:`pack_counter`."""
    if len(data) != 8:
        raise SecurityError(f"counter field must be 8 bytes, got {len(data)}")
    return struct.unpack(">Q", data)[0]
