"""Tests for the ablation analyses."""

import pytest

from repro.analysis.ablations import (
    gate_ablation,
    mee_cache_ablation,
    step_bits_ablation,
    timer_location_ablation,
)


class TestGateAblation:
    def test_fet_beats_epg_on_leakage(self):
        epg, fet = gate_ablation()
        assert fet.off_leakage_mw < epg.off_leakage_mw
        assert fet.board_component and not epg.board_component

    def test_leakage_scales_with_budget(self):
        import dataclasses

        from repro.config import DRIPSPowerBudget, skylake_config

        small_budget = dataclasses.replace(
            skylake_config().budget, aon_io_bank_w=1e-3
        )
        small = dataclasses.replace(skylake_config(), budget=small_budget)
        default_rows = gate_ablation()
        small_rows = gate_ablation(small)
        assert small_rows[1].off_leakage_mw < default_rows[1].off_leakage_mw


class TestTimerLocationAblation:
    def test_chipset_wins(self):
        into_processor, into_chipset = timer_location_ablation()
        assert into_chipset.drips_saving_mw > into_processor.drips_saving_mw
        assert into_chipset.extra_processor_pins == 0
        assert into_processor.extra_processor_pins > 0

    def test_only_chipset_enables_gating(self):
        into_processor, into_chipset = timer_location_ablation()
        assert into_chipset.enables_io_gating
        assert not into_processor.enables_io_gating


class TestMEECacheAblation:
    def test_bigger_cache_fewer_accesses(self):
        rows = mee_cache_ablation(
            cache_geometries=[(1, 1), (64, 8)], data_size=16 * 1024, accesses=150
        )
        small, large = rows
        assert large.hit_rate > small.hit_rate
        assert large.metadata_accesses_per_read < small.metadata_accesses_per_read

    def test_deterministic_given_seed(self):
        a = mee_cache_ablation(cache_geometries=[(4, 2)], accesses=100, seed=5)
        b = mee_cache_ablation(cache_geometries=[(4, 2)], accesses=100, seed=5)
        assert a == b


class TestStepBitsAblation:
    def test_21_bits_is_the_knee(self):
        rows = {row.fractional_bits: row for row in step_bits_ablation()}
        assert not rows[20].meets_1ppb
        assert rows[21].meets_1ppb

    def test_calibration_time_doubles_per_bit(self):
        rows = step_bits_ablation(bits=[10, 11])
        assert rows[1].calibration_seconds == pytest.approx(
            2 * rows[0].calibration_seconds
        )
