"""Tests for shallow idle states and governed mixed-idle behaviour."""

import pytest

from repro.core.techniques import TechniqueSet
from repro.errors import FlowError
from repro.processor.cstates import CState
from repro.system.flows import FlowController
from repro.system.states import PlatformState

from _platform import build_platform


def make(techniques=None):
    platform = build_platform(
        techniques if techniques is not None else TechniqueSet.baseline(),
        small_context=True,
    )
    flows = FlowController(platform)
    platform.boot()
    return platform, flows


class TestShallowIdle:
    def test_c8_round_trip(self):
        platform, flows = make()
        woke = []
        flows.set_active_callback(lambda event: woke.append(event))
        flows.request_shallow_idle(CState.C8, wake_delay_s=0.01)
        platform.kernel.run(max_events=10_000)
        assert platform.state is PlatformState.ACTIVE
        assert len(woke) == 1
        assert "shallow-C8" in woke[0].detail

    def test_shallow_power_between_drips_and_active(self):
        platform, flows = make()
        flows.request_shallow_idle(CState.C6, wake_delay_s=0.05)
        platform.kernel.run(until_ps=platform.kernel.now + 20 * 10**9)
        assert platform.state is PlatformState.DRIPS  # residency-wise idle
        power = platform.platform_power()
        assert 0.060 < power < 3.0
        assert power == pytest.approx(0.30, abs=0.02)  # the C6 ladder level
        platform.kernel.run(max_events=10_000)

    def test_shallow_exit_faster_than_drips_exit(self):
        platform, flows = make()
        durations = {}

        def woke(_event):
            durations["end"] = platform.kernel.now

        flows.set_active_callback(woke)
        flows.request_shallow_idle(CState.C2, wake_delay_s=0.001)
        platform.kernel.run(max_events=10_000)
        total = durations["end"]
        # entry 5 us + idle 1 ms + exit 5 us: far below a DRIPS cycle
        assert total < 1.2 * 10**9

    def test_c0_and_c10_rejected(self):
        platform, flows = make()
        with pytest.raises(FlowError):
            flows.request_shallow_idle(CState.C0, wake_delay_s=0.01)
        with pytest.raises(FlowError):
            flows.request_shallow_idle(CState.C10, wake_delay_s=0.01)

    def test_invalid_delay_rejected(self):
        platform, flows = make()
        with pytest.raises(FlowError):
            flows.request_shallow_idle(CState.C6, wake_delay_s=0.0)

    def test_no_context_machinery_touched(self):
        """Shallow idles never save context or gate the IO bank."""
        platform, flows = make(TechniqueSet.odrips())
        flows.request_shallow_idle(CState.C8, wake_delay_s=0.01)
        platform.kernel.run(max_events=10_000)
        assert platform.compute.expected_context is None  # never captured
        assert not platform.aon_io_bank.gated
        assert platform.board.fast_xtal.enabled


class TestGovernedMix:
    def test_governed_sequence_of_idles(self):
        """Replay a mixed trace of idle opportunities through the PMU's
        LTR/TNTE selection, taking shallow or DRIPS paths accordingly."""
        from repro.units import ms_to_ps, us_to_ps

        platform, flows = make()
        opportunities = [
            (us_to_ps(80), ms_to_ps(2), 0.002),       # tight LTR -> shallow
            (ms_to_ps(10), ms_to_ps(30_000), 0.05),   # long idle -> DRIPS
            (ms_to_ps(5), us_to_ps(400), 0.0004),     # imminent timer -> shallow
        ]
        chosen = []
        index = {"i": 0}

        def next_idle(_event=None):
            if index["i"] >= len(opportunities):
                return
            ltr, tnte, idle_s = opportunities[index["i"]]
            index["i"] += 1
            state = platform.pmu.select_idle_state(ltr, tnte)
            chosen.append(state)
            if state is CState.C10:
                platform.pmu.schedule_timer_event(
                    platform.next_timer_target(idle_s)
                )
                flows.request_drips()
            else:
                flows.request_shallow_idle(state, idle_s)

        flows.set_active_callback(next_idle)
        next_idle()
        platform.kernel.run(max_events=200_000)
        assert platform.state is PlatformState.ACTIVE
        assert chosen[1] is CState.C10
        assert chosen[0] is not CState.C10
        assert chosen[2] is not CState.C10
