"""Model-verifier tests: one deliberately broken fixture per rule.

Each fixture is the smallest platform-shaped object graph that violates
exactly the rule under test; the assertion checks both that the rule
fires and that no unrelated rule produces noise on the same fixture.
"""

from __future__ import annotations

import enum

from repro.clocks.clock import DerivedClock, GateableClock
from repro.clocks.crystal import CrystalOscillator
from repro.lint import lint_platform, walk_model
from repro.lint.model import lint_model_view
from repro.power.domain import Component, PowerDomain
from repro.power.gates import BoardFETGate
from repro.power.tree import PowerTree
from repro.sim.kernel import Kernel
from repro.system.flows import FlowStepSpec


class Fixture:
    """A bare platform-shaped root the model walker can descend into."""

    def __init__(self, **attrs):
        self.__dict__.update(attrs)


class FakeClockSource:
    """A clock source the platform does not own (triggers M201)."""

    def __init__(self, period_ps: int = 41667) -> None:
        self.period_ps = period_ps
        self.available = False
        self.effective_hz = 1e12 / period_ps


def make_tree() -> PowerTree:
    return PowerTree(Kernel())


def rule_ids(diagnostics):
    return sorted({d.rule for d in diagnostics})


def lint_fixture(**attrs):
    return lint_platform(Fixture(**attrs))


class TestPowerTreeRules:
    def test_m101_unattached_component(self):
        tree = make_tree()
        stray = Component("sensor.stray", leakage_watts=1e-3)
        diags = lint_fixture(tree=tree, stray=stray)
        assert rule_ids(diags) == ["M101"]
        assert "sensor.stray" in diags[0].message

    def test_m101_cross_wired_component(self):
        tree = make_tree()
        domain = tree.new_rail("vcc", 1.0).new_domain("d")
        cuckoo = Component("cuckoo")
        cuckoo._domain = domain  # bypasses PowerDomain.add on purpose
        diags = lint_fixture(tree=tree, cuckoo=cuckoo)
        assert rule_ids(diags) == ["M101"]
        assert "cross-wired" in diags[0].message

    def test_m102_domain_without_rail(self):
        tree = make_tree()
        tree.new_rail("vcc", 1.0).new_domain("good")
        floating = PowerDomain("floating")
        floating.new_component("lost", leakage_watts=1e-3)
        diags = lint_fixture(tree=tree, floating=floating)
        # the component inside the floating domain is wired consistently,
        # so only the domain-level rule fires
        assert rule_ids(diags) == ["M102"]

    def test_m103_rail_missing_regulator(self):
        tree = make_tree()
        rail = tree.new_rail("vcc", 1.0)
        rail.regulator = None
        diags = lint_fixture(tree=tree)
        assert rule_ids(diags) == ["M103"]
        assert "vcc" in diags[0].message

    def test_m104_domain_owned_by_two_rails(self):
        tree = make_tree()
        shared = tree.new_rail("vcc_a", 1.0).new_domain("shared")
        tree.new_rail("vcc_b", 1.0).add_domain(shared)
        diags = lint_fixture(tree=tree)
        assert rule_ids(diags) == ["M104"]
        assert "2 rails" in diags[0].message

    def test_m105_ownership_cycle(self):
        class SelfOwningDomain(PowerDomain):
            @property
            def components(self):
                return [self]

        tree = make_tree()
        tree.new_rail("vcc", 1.0).add_domain(SelfOwningDomain("ouroboros"))
        diags = lint_platform(Fixture(tree=tree))
        assert "M105" in rule_ids(diags)
        assert "ouroboros" in diags[0].message or any(
            "ouroboros" in d.message for d in diags
        )

    def test_m106_unbound_fet_gate(self):
        tree = make_tree()
        gate = BoardFETGate("fet:aon")  # bind_gpio never called
        tree.new_rail("vcc", 1.0).new_domain("aon", gate=gate)
        diags = lint_fixture(tree=tree)
        assert rule_ids(diags) == ["M106"]
        assert "bind_gpio" in (diags[0].hint or "")

    def test_m107_negative_component_power(self):
        tree = make_tree()
        domain = tree.new_rail("vcc", 1.0).new_domain("d")
        component = domain.new_component("broken")
        component._leakage_watts = -1e-3  # ctor rejects this; force it
        diags = lint_fixture(tree=tree)
        assert rule_ids(diags) == ["M107"]

    def test_m107_impossible_gate_leakage(self):
        class LeakyGate(BoardFETGate):
            leakage_fraction = 1.5  # leaks more than it gates

        tree = make_tree()
        gate = LeakyGate("fet:leaky")
        gate.bind_gpio(3)
        tree.new_rail("vcc", 1.0).new_domain("d", gate=gate)
        diags = lint_fixture(tree=tree)
        assert rule_ids(diags) == ["M107"]

    def test_m108_duplicate_component_names(self):
        tree = make_tree()
        rail = tree.new_rail("vcc", 1.0)
        rail.new_domain("a").new_component("dup.name")
        rail.new_domain("b").new_component("dup.name")
        diags = lint_fixture(tree=tree)
        assert rule_ids(diags) == ["M108"]
        assert "2 components" in diags[0].message


class TestClockTreeRules:
    def test_m201_clock_with_foreign_source(self):
        clock = DerivedClock("clk.orphan", FakeClockSource(), divider=1)
        diags = lint_fixture(clock=clock)
        assert rule_ids(diags) == ["M201"]
        assert "clk.orphan" in diags[0].message

    def test_m202_frequency_off_the_picosecond_grid(self):
        # 3 GHz rounds to a 333 ps period -> ~1000 ppm distortion
        xtal = CrystalOscillator("xtal3g", nominal_hz=3e9)
        diags = lint_fixture(xtal=xtal)
        assert rule_ids(diags) == ["M202"]
        assert "ppm" in diags[0].message

    def test_m202_accepts_the_paper_crystals(self):
        fast = CrystalOscillator("xtal24m", nominal_hz=24e6, ppm_error=30.0)
        slow = CrystalOscillator("rtc32k", nominal_hz=32768.0, ppm_error=-20.0)
        assert lint_fixture(fast=fast, slow=slow) == []

    def test_m203_negative_clock_power_coefficient(self):
        xtal = CrystalOscillator("xtal", nominal_hz=24e6)
        derived = DerivedClock("clk", xtal, divider=1)
        gated = GateableClock("clk.gated", derived, watts_per_hz=-1e-12)
        diags = lint_fixture(xtal=xtal, derived=derived, gated=gated)
        assert rule_ids(diags) == ["M203"]


class _S(enum.Enum):
    BOOT = "boot"
    ACTIVE = "active"
    IDLE = "idle"
    DEAD = "dead"


class _Wake(enum.Enum):
    TIMER = "timer"
    NETWORK = "network"


def fsm_fixture(transitions, wake_receptive=None, states=tuple(_S),
                initial=_S.BOOT, active=_S.ACTIVE):
    spec = {
        "states": states,
        "initial": initial,
        "active": active,
        "transitions": transitions,
        "wake_receptive": wake_receptive or {},
        "wake_event_types": tuple(_Wake),
    }
    return Fixture(fsm_description=lambda: spec)


class TestFSMRules:
    def test_m301_unreachable_state(self):
        fixture = fsm_fixture({
            _S.BOOT: (_S.ACTIVE,),
            _S.ACTIVE: (_S.IDLE,),
            _S.IDLE: (_S.ACTIVE,),
            # nothing ever reaches DEAD
        })
        diags = lint_platform(fixture)
        assert rule_ids(diags) == ["M301"]
        assert "DEAD" in diags[0].message

    def test_m302_state_with_no_exit_path(self):
        fixture = fsm_fixture({
            _S.BOOT: (_S.ACTIVE,),
            _S.ACTIVE: (_S.IDLE, _S.DEAD),
            _S.IDLE: (_S.IDLE,),  # idles forever, never back to ACTIVE
            _S.DEAD: (_S.ACTIVE,),
        })
        diags = lint_platform(fixture)
        assert rule_ids(diags) == ["M302"]
        assert "IDLE" in diags[0].message

    def test_m303_unhandled_wake_type(self):
        fixture = fsm_fixture(
            {
                _S.BOOT: (_S.ACTIVE,),
                _S.ACTIVE: (_S.IDLE,),
                _S.IDLE: (_S.ACTIVE,),
                _S.DEAD: (),
            },
            states=(_S.BOOT, _S.ACTIVE, _S.IDLE),
            wake_receptive={_S.IDLE: frozenset({_Wake.TIMER})},
        )
        diags = lint_platform(fixture)
        assert rule_ids(diags) == ["M303"]
        assert "NETWORK" in diags[0].message

    def test_clean_fsm(self):
        fixture = fsm_fixture(
            {
                _S.BOOT: (_S.ACTIVE,),
                _S.ACTIVE: (_S.IDLE,),
                _S.IDLE: (_S.ACTIVE,),
            },
            states=(_S.BOOT, _S.ACTIVE, _S.IDLE),
            wake_receptive={_S.IDLE: frozenset(_Wake)},
        )
        assert lint_platform(fixture) == []


class TestFlowRules:
    def test_m304_flow_references_unknown_domain(self):
        tree = make_tree()
        tree.new_rail("vcc", 1.0).new_domain("proc.compute")
        flow = (FlowStepSpec("entry:quiesce", requires=("proc.cmpute",)),)
        fixture = Fixture(tree=tree, flow_descriptions=lambda: {"entry": flow})
        diags = lint_platform(fixture)
        assert rule_ids(diags) == ["M304"]
        assert "proc.cmpute" in diags[0].message

    def test_m305_flow_requires_domain_it_gated_off(self):
        flow = (
            FlowStepSpec("entry:gate-compute", gates_off=("proc.compute",)),
            FlowStepSpec("entry:late-save", requires=("proc.compute",)),
        )
        fixture = Fixture(flow_descriptions=lambda: {"entry": flow})
        diags = lint_platform(fixture)
        assert rule_ids(diags) == ["M305"]
        assert "entry:gate-compute" in diags[0].message

    def test_m305_gates_on_clears_the_gate(self):
        flow = (
            FlowStepSpec("exit:gate", gates_off=("proc.compute",)),
            FlowStepSpec("exit:ramp", gates_on=("proc.compute",)),
            FlowStepSpec("exit:resume", requires=("proc.compute",)),
        )
        fixture = Fixture(flow_descriptions=lambda: {"exit": flow})
        assert lint_platform(fixture) == []


class TestWalker:
    def test_walk_collects_every_bucket(self):
        tree = make_tree()
        domain = tree.new_rail("vcc", 1.0).new_domain("d")
        domain.new_component("c")
        xtal = CrystalOscillator("xtal", nominal_hz=24e6)
        clock = DerivedClock("clk", xtal, divider=2)
        view = walk_model(Fixture(tree=tree, xtal=xtal, clock=clock))
        assert view.tree is tree
        assert [r.name for r in view.rails] == ["vcc"]
        assert [d.name for d in view.domains] == ["d"]
        assert [c.name for c in view.components] == ["c"]
        assert [x.name for x in view.crystals] == ["xtal"]
        assert [c.name for c in view.clocks] == ["clk"]

    def test_walk_reaches_clocks_through_consumer_registry(self):
        # the crystal's consumers list is the only path to this clock
        xtal = CrystalOscillator("xtal", nominal_hz=24e6)
        DerivedClock("clk.hidden", xtal, divider=4)
        view = walk_model(Fixture(xtal=xtal))
        assert [c.name for c in view.clocks] == ["clk.hidden"]

    def test_walk_survives_reference_cycles(self):
        a, b = Fixture(), Fixture()
        a.other, b.other = b, a
        a.tree = make_tree()
        view = walk_model(a)
        assert view.tree is a.tree

    def test_clean_minimal_platform(self):
        tree = make_tree()
        gate = BoardFETGate("fet")
        gate.bind_gpio(7)
        rail = tree.new_rail("vcc", 1.0)
        rail.new_domain("aon", gate=gate).new_component("rtc", leakage_watts=1e-5)
        xtal = CrystalOscillator("xtal", nominal_hz=24e6)
        DerivedClock("clk", xtal, divider=1)
        assert lint_fixture(tree=tree, xtal=xtal) == []

    def test_empty_view_is_clean(self):
        assert lint_model_view(walk_model(Fixture())) == []


class TestFlowSpanDiscipline:
    """M306: instrumented flow steps must open and close their spans."""

    FLOW = (
        FlowStepSpec("entry:quiesce"),
        FlowStepSpec("entry:save"),
        FlowStepSpec("entry:drips"),
    )

    def test_uninstrumented_model_owes_no_declaration(self):
        fixture = Fixture(flow_descriptions=lambda: {"entry": self.FLOW})
        assert "M306" not in rule_ids(lint_platform(fixture))

    def test_instrumented_without_declaration_flagged(self):
        fixture = Fixture(
            obs=None,  # the seam exists; the declaration does not
            flow_descriptions=lambda: {"entry": self.FLOW},
        )
        diags = [d for d in lint_platform(fixture) if d.rule == "M306"]
        assert len(diags) == 1
        assert "observability description" in diags[0].message
        assert "flow_span_labels" in (diags[0].hint or "")

    def test_flow_missing_from_declaration_flagged(self):
        fixture = Fixture(
            obs=None,
            flow_descriptions=lambda: {"entry": self.FLOW},
            observability_description=lambda: {
                "flow_span_labels": {"exit": ("exit:wake",)}
            },
        )
        diags = [d for d in lint_platform(fixture) if d.rule == "M306"]
        assert len(diags) == 1
        assert "'entry'" in diags[0].message

    def test_label_step_mismatch_flagged(self):
        labels = ("entry:quiesce", "entry:drips")  # entry:save missing
        fixture = Fixture(
            obs=None,
            flow_descriptions=lambda: {"entry": self.FLOW},
            observability_description=lambda: {"flow_span_labels": {"entry": labels}},
        )
        diags = [d for d in lint_platform(fixture) if d.rule == "M306"]
        assert len(diags) == 1
        assert "do not match" in diags[0].message

    def test_duplicate_label_flagged(self):
        labels = ("entry:quiesce", "entry:quiesce", "entry:drips")
        fixture = Fixture(
            obs=None,
            flow_descriptions=lambda: {"entry": self.FLOW},
            observability_description=lambda: {"flow_span_labels": {"entry": labels}},
        )
        diags = [d for d in lint_platform(fixture) if d.rule == "M306"]
        assert any("more than once" in d.message for d in diags)

    def test_exact_declaration_is_clean(self):
        labels = tuple(step.label for step in self.FLOW)
        fixture = Fixture(
            obs=None,
            flow_descriptions=lambda: {"entry": self.FLOW},
            observability_description=lambda: {"flow_span_labels": {"entry": labels}},
        )
        assert lint_platform(fixture) == []

    def test_skylake_declaration_matches_flow_specs(self):
        from repro.system.flows import ENTRY_FLOW_SPEC, EXIT_FLOW_SPEC, FLOW_SPAN_TABLE

        assert FLOW_SPAN_TABLE["entry"] == tuple(s.label for s in ENTRY_FLOW_SPEC)
        assert FLOW_SPAN_TABLE["exit"] == tuple(s.label for s in EXIT_FLOW_SPEC)
