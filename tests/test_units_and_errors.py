"""Tests for the unit helpers and the error hierarchy."""

import pytest

from repro import errors, units


class TestTimeConversions:
    def test_seconds_roundtrip(self):
        assert units.ps_to_seconds(units.seconds_to_ps(1.5)) == pytest.approx(1.5)

    def test_scale_constants(self):
        assert units.SECOND == 10**12
        assert units.MS * 1000 == units.SECOND
        assert units.US * 1000 == units.MS
        assert units.NS * 1000 == units.US

    def test_named_converters(self):
        assert units.ms_to_ps(1.0) == units.MS
        assert units.us_to_ps(2.0) == 2 * units.US
        assert units.ns_to_ps(3.0) == 3 * units.NS

    def test_period_of_24mhz(self):
        assert units.period_ps(24e6) == round(1e12 / 24e6)

    def test_period_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.period_ps(0)
        with pytest.raises(ValueError):
            units.period_ps(-1.0)


class TestPowerConversions:
    def test_milliwatts(self):
        assert units.milliwatts(60.0) == pytest.approx(0.060)
        assert units.watts_to_milliwatts(0.060) == pytest.approx(60.0)

    def test_microwatts(self):
        assert units.microwatts(500.0) == pytest.approx(0.0005)

    def test_energy(self):
        assert units.energy_joules(2.0, units.SECOND) == pytest.approx(2.0)
        assert units.energy_joules(1.0, units.MS) == pytest.approx(1e-3)


class TestPpm:
    def test_parts_per_million(self):
        assert units.parts_per_million(1000.0, 100.0) == pytest.approx(1000.1)
        assert units.parts_per_million(1000.0, -100.0) == pytest.approx(999.9)

    def test_ratio_ppb(self):
        assert units.ratio_ppb(1.000000001, 1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            units.ratio_ppb(1.0, 0.0)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_class",
        [
            errors.SimulationError,
            errors.PowerError,
            errors.ClockError,
            errors.TimerError,
            errors.MemoryFault,
            errors.SecurityError,
            errors.FlowError,
            errors.IOError_,
            errors.ConfigError,
            errors.WorkloadError,
            errors.MeasurementError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_class):
        assert issubclass(error_class, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise error_class("boom")

    def test_io_error_does_not_shadow_builtin(self):
        assert errors.IOError_ is not IOError
        assert not issubclass(errors.IOError_, OSError)


class TestConfigValidation:
    def test_invalid_efficiency_rejected(self):
        import dataclasses

        from repro.config import skylake_config
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            dataclasses.replace(skylake_config(), drips_efficiency=0.0)
        with pytest.raises(ConfigError):
            dataclasses.replace(skylake_config(), active_efficiency=1.5)

    def test_invalid_frequency_range_rejected(self):
        import dataclasses

        from repro.config import skylake_config
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            dataclasses.replace(skylake_config(), min_core_ghz=2.0, max_core_ghz=1.0)

    def test_voltage_model_rejects_nonpositive_frequency(self):
        from repro.config import ActivePowerModel
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ActivePowerModel().voltage(0.0)

    def test_context_inventory_totals(self):
        from repro.config import ContextInventory

        inventory = ContextInventory()
        assert inventory.total_bytes == 200 * 1024
        assert inventory.offloadable_bytes == inventory.total_bytes
