"""Tests for FlowController.external_wake paths and FlowStats latencies.

The paper's Sec. 5 wake-up-off design moves wake ownership into the
chipset hub; the baseline keeps it in the processor PMU.  Both arms of
``FlowController.external_wake`` must deliver an external event out of
DRIPS, and both must be a no-op when the platform is not in DRIPS.
"""

import pytest

from repro.core.techniques import TechniqueSet
from repro.io.wake import WakeEventType
from repro.obs.tracer import observe
from repro.system.flows import FlowController, FlowStats
from repro.system.states import PlatformState

from _platform import build_platform


def enter_drips(techniques, idle_s=0.5):
    """Boot and run until the platform parks in DRIPS; return the rig."""
    platform = build_platform(techniques, small_context=True)
    flows = FlowController(platform)
    woke = []
    flows.set_active_callback(lambda event: woke.append(event))
    platform.boot()
    platform.pmu.schedule_timer_event(platform.next_timer_target(idle_s))
    flows.request_drips()
    platform.kernel.run(until_ps=platform.kernel.now + 10 * 10**9)
    assert platform.state is PlatformState.DRIPS
    return platform, flows, woke


class TestExternalWakePaths:
    def test_baseline_pmu_path(self):
        """Without wake-up-off the PMU monitor is disarmed directly."""
        platform, flows, woke = enter_drips(TechniqueSet.baseline())
        flows.external_wake(WakeEventType.NETWORK, detail="tcp-syn")
        platform.kernel.run(max_events=100_000)
        assert platform.state is PlatformState.ACTIVE
        assert woke and woke[0].event_type is WakeEventType.NETWORK
        assert woke[0].detail == "tcp-syn"
        assert flows.stats.exit_latencies_ps

    def test_wake_up_off_hub_path(self):
        """With wake-up-off the event routes through the chipset hub."""
        platform, flows, woke = enter_drips(TechniqueSet.wake_up_off_only())
        flows.external_wake(WakeEventType.USER_INPUT, detail="lid")
        platform.kernel.run(max_events=100_000)
        assert platform.state is PlatformState.ACTIVE
        assert woke and woke[0].event_type is WakeEventType.USER_INPUT
        assert any(
            event.event_type is WakeEventType.USER_INPUT
            for event in platform.chipset.wake_hub.history
        )

    def test_noop_when_not_in_drips(self):
        platform = build_platform(TechniqueSet.baseline(), small_context=True)
        flows = FlowController(platform)
        platform.boot()
        assert platform.state is PlatformState.ACTIVE
        flows.external_wake(WakeEventType.NETWORK)  # must not raise
        assert platform.state is PlatformState.ACTIVE
        assert not flows.stats.exit_latencies_ps

    def test_timer_still_wakes_after_ignored_external(self):
        """An external wake swallowed while ACTIVE must not break timers."""
        platform, flows, woke = enter_drips(TechniqueSet.baseline(), idle_s=0.05)
        flows.external_wake(WakeEventType.DEBUG)
        platform.kernel.run(max_events=100_000)
        assert platform.state is PlatformState.ACTIVE
        # second external wake arrives too late — platform already awake
        flows.external_wake(WakeEventType.DEBUG)
        assert platform.state is PlatformState.ACTIVE
        assert len(woke) == 1

    def test_observed_external_wake_closes_all_spans(self):
        """The external-wake exit path obeys span discipline too."""
        with observe() as tracer:
            platform, flows, _woke = enter_drips(TechniqueSet.odrips())
            flows.external_wake(WakeEventType.NETWORK, detail="push")
            platform.kernel.run(max_events=100_000)
        assert platform.state is PlatformState.ACTIVE
        assert tracer.open_spans() == []
        assert tracer.metrics.counter_value("wake.delivered:network") == 1
        assert tracer.metrics.histogram("flow.exit_latency_us").count == 1


class TestFlowStats:
    def test_empty_stats_report_zero(self):
        stats = FlowStats()
        assert stats.last_entry_us() == 0.0
        assert stats.last_exit_us() == 0.0

    def test_last_latency_is_most_recent(self):
        stats = FlowStats(
            entry_latencies_ps=[100_000_000, 200_000_000],
            exit_latencies_ps=[300_000_000],
        )
        assert stats.last_entry_us() == pytest.approx(200.0)
        assert stats.last_exit_us() == pytest.approx(300.0)

    def test_cycle_populates_both_latency_lists(self):
        platform, flows, _woke = enter_drips(TechniqueSet.baseline(), idle_s=0.05)
        platform.kernel.run(max_events=100_000)
        assert len(flows.stats.entry_latencies_ps) == 1
        assert len(flows.stats.exit_latencies_ps) == 1
        assert flows.stats.last_entry_us() > 0.0
        assert flows.stats.last_exit_us() > 0.0
