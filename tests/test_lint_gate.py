"""The self-enforcing lint gate (tier 1).

Runs the model verifier over the shipped Skylake platform in both extreme
configurations and the source checker over every module of ``repro``.  A
change that mis-wires the platform model or breaks unit discipline fails
this test, which is the point: the static-analysis gate rides in the same
``pytest`` invocation CI already runs.
"""

from __future__ import annotations

import pytest

from repro.lint import lint_experiments, lint_paths, lint_platform, walk_model
from repro.lint.diagnostics import render_text
from repro.lint.source import default_source_root
from repro.system.skylake import SkylakePlatform
from repro.core.techniques import TechniqueSet


def describe(diagnostics) -> str:
    return render_text(diagnostics)


@pytest.mark.parametrize(
    "techniques", [TechniqueSet.baseline(), TechniqueSet.odrips()],
    ids=["baseline", "odrips"],
)
def test_shipped_platform_model_is_clean(techniques):
    platform = SkylakePlatform(techniques=techniques)
    diagnostics = lint_platform(platform)
    assert diagnostics == [], describe(diagnostics)


def test_model_walk_is_not_vacuous():
    """Guard against the walker silently finding nothing (which would make
    the clean-model assertion above meaningless)."""
    view = walk_model(SkylakePlatform(techniques=TechniqueSet.odrips()))
    assert view.tree is not None
    assert len(view.rails) >= 3
    assert len(view.domains) >= 5
    assert len(view.components) >= 10
    assert view.gates and view.crystals and view.clocks
    assert view.fsm is not None
    assert {flow.name for flow in view.flows} == {"entry", "exit"}


def test_repro_sources_are_clean():
    diagnostics = lint_paths([default_source_root()])
    assert diagnostics == [], describe(diagnostics)


def test_experiment_registry_is_clean():
    """M307: every shipped driver declares goldens (or an exempt reason)."""
    diagnostics = lint_experiments()
    assert diagnostics == [], describe(diagnostics)


def test_experiment_registry_check_is_not_vacuous():
    """Guard against the registry check passing because nothing registered."""
    from repro.core.experiments import EXPERIMENTS

    assert len(EXPERIMENTS) >= 8
    assert sum(1 for spec in EXPERIMENTS.values() if spec.goldens) >= 7
