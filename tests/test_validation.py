"""Tests for the power-model validation workflow."""

import pytest

from repro.analysis.validation import (
    predicted_average_power_w,
    predicted_drips_power_w,
    validate_power_model,
)
from repro.config import skylake_config
from repro.core.techniques import ContextStore, Technique, TechniqueSet


class TestPredictions:
    def test_baseline_prediction_is_budget_total(self):
        budget = skylake_config().budget
        predicted = predicted_drips_power_w(budget, TechniqueSet.baseline())
        assert predicted == pytest.approx(budget.platform_total_w())

    def test_each_technique_reduces_prediction(self):
        budget = skylake_config().budget
        baseline = predicted_drips_power_w(budget, TechniqueSet.baseline())
        previous = baseline
        for techniques in [
            TechniqueSet.wake_up_off_only(),
            TechniqueSet.with_io_gating(),
            TechniqueSet.odrips(),
            TechniqueSet.odrips_pcm(),
        ]:
            predicted = predicted_drips_power_w(budget, techniques)
            assert predicted < previous
            previous = predicted

    def test_chipset_sram_better_than_baseline_worse_than_dram(self):
        budget = skylake_config().budget
        baseline = predicted_drips_power_w(budget, TechniqueSet.baseline())
        chipset = predicted_drips_power_w(
            budget, TechniqueSet({Technique.CTX_SGX_DRAM}, ContextStore.CHIPSET_SRAM)
        )
        dram = predicted_drips_power_w(budget, TechniqueSet.ctx_sgx_dram_only())
        assert dram < chipset < baseline

    def test_average_prediction_near_75mw(self):
        predicted = predicted_average_power_w(TechniqueSet.baseline())
        assert predicted * 1e3 == pytest.approx(74.5, abs=1.5)


class TestValidationReport:
    def test_paper_accuracy_bar(self):
        """Sec. 7: 'the accuracy of our power-model is approximately 95%'.

        Our model and simulator share the budget constants, so agreement
        should be well above the paper's bar."""
        report = validate_power_model(
            cycles=1,
            technique_sets=[TechniqueSet.baseline(), TechniqueSet.odrips()],
        )
        assert report.worst_accuracy > 0.95
        assert report.mean_accuracy > 0.98

    def test_rows_labelled(self):
        report = validate_power_model(
            cycles=1, technique_sets=[TechniqueSet.baseline()]
        )
        assert report.rows[0].label == "Baseline (DRIPS)"
