"""Cycle-compiled macro-stepping: differential equivalence and seams.

The contract under test (see docs/PERF.md): for periodic workloads a
macro run must equal the event-by-event run **bit-for-bit** — average
power, per-state energy, dwell times, flow latencies, and the wake log —
while compiling almost every cycle; at irregular points (external wakes)
the engine must fall back to exact simulation and re-engage, keeping the
totals within golden tolerance.
"""

from __future__ import annotations

import pytest

from repro.config import StandbyWorkloadConfig, skylake_config
from repro.core.odrips import ODRIPSController
from repro.core.techniques import TechniqueSet
from repro.errors import MacroError, MeasurementError, SimulationError
from repro.lint.model import lint_model_view, walk_model
from repro.obs.ledger import EnergyLedger
from repro.obs.runlog import RunRecorder, install_recorder, uninstall_recorder
from repro.obs.tracer import MACRO_TRACK, observe
from repro.perf import SimulationCache
from repro.power.meter import EnergyMeter
from repro.sim.kernel import Kernel
from repro.sim.macro import MacroConfig, cycles_for_horizon
from repro.system.skylake import SkylakePlatform
from repro.workloads.standby import ConnectedStandbyRunner

GOLDEN_REL_TOL = 1e-9


def _run(cycles, macro=False, workload=None, **runner_kwargs):
    platform = SkylakePlatform(skylake_config(), TechniqueSet.baseline())
    runner = ConnectedStandbyRunner(
        platform, workload=workload, macro=macro, **runner_kwargs
    )
    return runner.run(cycles=cycles), runner


class TestDifferentialEquivalence:
    def test_periodic_results_bit_for_bit(self):
        """>= 10 cycles: every measured figure identical, not merely close."""
        exact, _ = _run(cycles=12)
        macro, _ = _run(cycles=12, macro=True)
        assert exact.macro is None
        assert macro.macro is not None and macro.macro["cycles_compiled"] >= 9
        assert macro.average_power_w == exact.average_power_w
        assert macro.residency == exact.residency
        assert macro.residency.dwell_ps == exact.residency.dwell_ps
        assert macro.residency.energy_j == exact.residency.energy_j
        assert macro.entry_latencies_ps == exact.entry_latencies_ps
        assert macro.exit_latencies_ps == exact.exit_latencies_ps
        assert macro.wake_events == exact.wake_events
        assert (macro.window_start_ps, macro.window_end_ps) == (
            exact.window_start_ps,
            exact.window_end_ps,
        )

    def test_fixed_period_schedule_bit_for_bit(self):
        """The Sec. 7 break-even schedule (period_s) compiles too."""
        exact, _ = _run(cycles=10, period_s=30.2)
        macro, _ = _run(cycles=10, period_s=30.2, macro=True)
        assert macro.macro["cycles_compiled"] > 0
        assert macro.average_power_w == exact.average_power_w
        assert macro.residency == exact.residency
        assert macro.wake_events == exact.wake_events

    def test_external_wake_fallback_within_tolerance(self):
        """A mid-horizon external wake de-compiles; totals still match."""
        workload = StandbyWorkloadConfig(external_wake_rate_per_hour=20.0)
        exact, _ = _run(cycles=30, workload=workload, external_wakes=True)
        macro, _ = _run(cycles=30, workload=workload, external_wakes=True, macro=True)
        stats = macro.macro
        assert stats["cycles_compiled"] > 0
        assert stats["fingerprint_mismatches"] > 0  # wakes broke periodicity
        assert stats["fallbacks"] >= 1  # engine de-compiled at least once
        assert stats["macro_steps"] >= 2  # ... and re-engaged afterwards
        rel = abs(macro.average_power_w - exact.average_power_w) / exact.average_power_w
        assert rel <= GOLDEN_REL_TOL
        assert macro.residency.dwell_ps == exact.residency.dwell_ps
        assert macro.wake_events == exact.wake_events

    def test_max_skip_bounds_each_span(self):
        macro, runner = _run(cycles=20, macro=MacroConfig(max_skip=5))
        engine = runner._macro_engine
        assert engine.spans and all(span.cycles <= 5 for span in engine.spans)
        assert macro.macro["macro_steps"] >= 2
        exact, _ = _run(cycles=20)
        assert macro.average_power_w == exact.average_power_w

    def test_randomized_maintenance_disables_engine(self):
        result, runner = _run(cycles=3, macro=True, randomize_maintenance=True)
        assert runner._macro_engine is None
        assert result.macro is None


class TestLedgerDiscipline:
    def test_macro_trace_stays_ledger_consumable(self):
        """Summary records keep naive rail integration balanced: the
        obs ledger integrates the macro trace's rail channels across the
        compiled spans and still lands on the measured total energy."""
        import math

        platform = SkylakePlatform(skylake_config(), TechniqueSet.baseline())
        result = ConnectedStandbyRunner(platform, macro=True).run(cycles=15)
        assert result.macro["cycles_compiled"] > 0
        ledger = EnergyLedger.from_trace(
            platform.trace, result.window_start_ps, result.window_end_ps
        )
        total = math.fsum(result.residency.energy_j.values())
        assert abs(ledger.total_energy_j - total) <= GOLDEN_REL_TOL * total

    def test_runtime_check_rejects_undeclared_rail(self):
        """Seeded mutation: dropping a rail from the declaration trips
        the compile-time ledger check (non-vacuity of the runtime gate)."""
        platform = SkylakePlatform(skylake_config(), TechniqueSet.baseline())
        spec = platform.macro_description()
        rails = tuple(spec["ledger_rails"])[:-1]  # drop one declared rail
        platform.macro_description = lambda: {"ledger_rails": rails}
        runner = ConnectedStandbyRunner(platform, macro=True)
        with pytest.raises(MacroError, match="ledger"):
            runner.run(cycles=8)


class TestM308LedgerCoverage:
    def test_shipped_platform_clean(self):
        platform = SkylakePlatform(skylake_config(), TechniqueSet.odrips())
        diagnostics = lint_model_view(walk_model(platform))
        assert [d for d in diagnostics if d.rule == "M308"] == []

    def test_seeded_mutation_undeclared_rail(self):
        platform = SkylakePlatform(skylake_config(), TechniqueSet.baseline())
        view = walk_model(platform)
        view.macro_ledger_rails = view.macro_ledger_rails[:-1]
        found = [d for d in lint_model_view(view) if d.rule == "M308"]
        assert len(found) == 1 and "missing from the macro ledger" in found[0].message

    def test_seeded_mutation_stale_declaration(self):
        platform = SkylakePlatform(skylake_config(), TechniqueSet.baseline())
        view = walk_model(platform)
        view.macro_ledger_rails = view.macro_ledger_rails + ("ghost_rail",)
        found = [d for d in lint_model_view(view) if d.rule == "M308"]
        assert len(found) == 1 and "stale" in found[0].message

    def test_platform_without_hook_exempt(self):
        view = walk_model(object())
        assert [d for d in lint_model_view(view) if d.rule == "M308"] == []


class TestKernelWarp:
    def test_warp_shifts_clock_and_queue_uniformly(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(100, lambda: fired.append(("a", kernel.now)), label="a")
        kernel.schedule(200, lambda: fired.append(("b", kernel.now)), label="b")
        kernel.warp(1_000)
        assert kernel.now == 1_000
        kernel.run()
        assert fired == [("a", 1_100), ("b", 1_200)]

    def test_warp_backwards_rejected(self):
        with pytest.raises(SimulationError):
            Kernel().warp(-1)

    def test_pending_signature_invariant_under_warp(self):
        kernel = Kernel()
        kernel.schedule(500, lambda: None, label="later")
        kernel.schedule(100, lambda: None, label="sooner")
        cancelled = kernel.schedule(300, lambda: None, label="gone")
        cancelled.cancel()
        before = kernel.pending_signature()
        assert before == ((100, "sooner"), (500, "later"))
        kernel.warp(10_000)
        assert kernel.pending_signature() == before


class TestMeterInject:
    def test_inject_credits_energy_and_advances_anchor(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 2.0)
        meter.set_power(0, "b", 1.0)
        meter.advance(10**12)  # 1 s: a=2 J, b=1 J
        meter.inject(3 * 10**12, {"a": 42.0})
        # a credited directly; b integrated across the span at its level
        assert meter.energy("a") == 44.0
        assert meter.energy("b") == 3.0
        # the anchor moved: no double counting on the next advance
        meter.advance(3 * 10**12)
        assert meter.energy("a") == 44.0

    def test_inject_backwards_rejected(self):
        meter = EnergyMeter()
        meter.set_power(10**12, "a", 1.0)
        with pytest.raises(MeasurementError):
            meter.inject(0, {"a": 1.0})


class TestIntegrationSeams:
    def test_cache_key_distinguishes_macro_from_exact(self):
        cache = SimulationCache()
        controller = ODRIPSController(cache=cache)
        exact = controller.measure(cycles=3, macro=False)
        macro = controller.measure(cycles=3, macro=True)
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert macro.average_power_w == exact.average_power_w
        again = controller.measure(cycles=3, macro=True)
        assert cache.stats.hits == 1 and again is macro

    def test_obs_macro_span_and_metric(self):
        with observe() as tracer:
            platform = SkylakePlatform(skylake_config(), TechniqueSet.baseline())
            result = ConnectedStandbyRunner(platform, macro=True).run(cycles=10)
        compiled = result.macro["cycles_compiled"]
        assert compiled > 0
        assert tracer.metrics.counter_value("macro.cycles_compiled") == compiled
        assert tracer.metrics.counter_value("macro.steps") == result.macro["macro_steps"]
        spans = [s for s in tracer.spans if s.track == MACRO_TRACK]
        assert spans and all(s.name.startswith("macro:compiled") for s in spans)

    def test_sweep_serial_fallback_on_single_cpu(self, monkeypatch):
        import importlib

        sweep_module = importlib.import_module("repro.analysis.sweep")
        monkeypatch.setattr(sweep_module.os, "cpu_count", lambda: 1)
        recorder = install_recorder(RunRecorder())
        try:
            rows = sweep_module.sweep([1.0, 2.0], _double, parallel=True)
        finally:
            uninstall_recorder()
        assert rows == [(1.0, 2.0), (2.0, 4.0)]
        (record,) = recorder._pending_sweeps
        assert record["backend"] == "serial-fallback"
        assert record["parallel"] is False and record["workers"] is None

    def test_sweep_explicit_backends_still_recorded(self, monkeypatch):
        import importlib

        sweep_module = importlib.import_module("repro.analysis.sweep")
        monkeypatch.setattr(sweep_module.os, "cpu_count", lambda: 1)
        recorder = install_recorder(RunRecorder())
        try:
            sweep_module.sweep([1.0, 2.0], _double, parallel=False)
        finally:
            uninstall_recorder()
        (record,) = recorder._pending_sweeps
        assert record["backend"] == "serial"


def _double(value):
    return value * 2


class TestHorizonHelper:
    def test_cycles_for_horizon(self):
        # one fig2 cycle is idle + maintenance ~= 30.145 s
        assert cycles_for_horizon(7.0, 30.0, 0.145) == round(7 * 86400 / 30.145)
        assert cycles_for_horizon(0.0001, 30.0, 0.145) == 1  # floor of one cycle

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(MacroError):
            cycles_for_horizon(0.0, 30.0, 0.145)
