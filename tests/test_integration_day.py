"""A day-in-the-life integration test: everything composed at once.

One platform runs governed idles (shallow + DRIPS), external wakes, a
memory-DVFS governor, and context protection across many cycles, and
every accounting invariant must hold at the end — the closest thing to
the paper's week-on-the-bench soak test.
"""

import pytest

from repro.core.techniques import TechniqueSet
from repro.io.wake import WakeEventType
from repro.memory.dvfs import MemoryDVFSGovernor
from repro.processor.cstates import CState
from repro.system.flows import FlowController
from repro.system.states import PlatformState
from repro.units import PICOSECONDS_PER_SECOND, ms_to_ps

from _platform import build_platform


@pytest.fixture(scope="module")
def day_run():
    platform = build_platform(TechniqueSet.odrips(), small_context=True)
    flows = FlowController(platform)
    governor = MemoryDVFSGovernor(platform)
    log = {"cycles": 0, "wakes": []}

    # a repeating pattern: two long DRIPS idles, one shallow, one with an
    # external wake arriving mid-sleep
    PATTERN = ["drips", "drips", "shallow", "drips-network"]
    TOTAL = 12

    def next_phase(event=None):
        if event is not None:
            log["wakes"].append(event)
        if log["cycles"] >= TOTAL:
            return
        kind = PATTERN[log["cycles"] % len(PATTERN)]
        log["cycles"] += 1
        if kind == "shallow":
            flows.request_shallow_idle(CState.C8, wake_delay_s=0.004)
            return
        governor.enter_standby_mode()
        platform.pmu.schedule_timer_event(platform.next_timer_target(0.5))
        if kind == "drips-network":
            platform.kernel.schedule(
                ms_to_ps(250),
                lambda: flows.external_wake(WakeEventType.NETWORK, "push"),
                label="test:network",
            )
        flows.request_drips()

    def on_active(event):
        governor.enter_interactive_mode()
        next_phase(event)

    flows.set_active_callback(on_active)
    platform.boot()
    next_phase()
    platform.kernel.run(max_events=2_000_000)
    return platform, flows, governor, log


class TestDayInTheLife:
    def test_all_cycles_completed(self, day_run):
        platform, _flows, _governor, log = day_run
        assert log["cycles"] == 12
        assert platform.state is PlatformState.ACTIVE
        assert len(log["wakes"]) == 12

    def test_wake_source_mix(self, day_run):
        _platform, _flows, _governor, log = day_run
        kinds = [event.event_type for event in log["wakes"]]
        assert kinds.count(WakeEventType.NETWORK) == 3  # one per pattern rep
        assert kinds.count(WakeEventType.TIMER) == 9

    def test_energy_accounting_consistent(self, day_run):
        """Exact meter integral == trace-integral over the whole run."""
        platform, _flows, _governor, _log = day_run
        end = platform.kernel.now
        platform.meter.advance(end)
        meter_energy = platform.meter.energy("platform")
        trace_energy = 0.0
        for lo, hi, watts in platform.trace.intervals("platform", end):
            trace_energy += watts * (hi - lo) / PICOSECONDS_PER_SECOND
        assert meter_energy == pytest.approx(trace_energy, rel=1e-9)

    def test_dvfs_governor_retrained_each_cycle(self, day_run):
        _platform, _flows, governor, _log = day_run
        assert governor.mode == "interactive"
        assert governor.retrain_count >= 18  # 9 DRIPS cycles x 2 retrains

    def test_context_round_trips_survived(self, day_run):
        platform, flows, _governor, _log = day_run
        # 9 DRIPS cycles -> 9 context saves/restores through the MEE
        assert len(flows.stats.ctx_save_latencies_ps) == 9
        assert len(flows.stats.ctx_restore_latencies_ps) == 9
        assert platform.mee.stats.integrity_violations == 0

    def test_timer_stayed_consistent(self, day_run):
        """After 9 freeze/handoff/restore round trips the TSC still
        tracks wall time."""
        platform, _flows, _governor, _log = day_run
        now = platform.kernel.now
        tsc = platform.pmu.tsc.read(now)
        wall = platform.board.fast_clock.effective_hz * (now / 1e12)
        assert abs(tsc - wall) < 2000  # compensation constants accumulate

    def test_residency_report_covers_all_states(self, day_run):
        from repro.measure.residency import residency_report

        platform, _flows, _governor, _log = day_run
        report = residency_report(platform.trace, 0, platform.kernel.now)
        assert report.residency("drips") > 0.9
        total = sum(report.residency(state) for state in report.dwell_ps)
        assert total == pytest.approx(1.0)
