"""Tests for the DRAM device model."""

import pytest

from repro.errors import MemoryFault
from repro.memory.dram import DRAMDevice, DRAMState
from repro.power.domain import PowerDomain
from repro.units import GIB


def make_dram(capacity=1 * GIB, domain=None, **kwargs):
    component = domain.new_component("dram") if domain is not None else None
    return DRAMDevice("dram", capacity_bytes=capacity, power_component=component, **kwargs)


class TestStates:
    def test_active_allows_access(self):
        dram = make_dram()
        dram.write(0, b"abc")
        data, latency = dram.read(0, 3)
        assert data == b"abc"
        assert latency > 0

    def test_self_refresh_retains_data_but_blocks_access(self):
        dram = make_dram()
        dram.write(0, b"abc")
        dram.enter_self_refresh()
        assert dram.state is DRAMState.SELF_REFRESH
        with pytest.raises(MemoryFault):
            dram.read(0, 3)
        dram.exit_self_refresh()
        data, _ = dram.read(0, 3)
        assert data == b"abc"

    def test_power_off_loses_data(self):
        dram = make_dram()
        dram.write(0, b"abc")
        dram.power_off()
        dram.power_on()
        data, _ = dram.read(0, 3)
        assert data == b"\x00\x00\x00"

    def test_self_refresh_of_off_device_rejected(self):
        dram = make_dram()
        dram.power_off()
        with pytest.raises(MemoryFault):
            dram.enter_self_refresh()


class TestPower:
    def test_self_refresh_cheaper_than_active(self):
        domain = PowerDomain("d")
        dram = make_dram(domain=domain)
        component = domain.components[0]
        active = component.power_watts
        dram.enter_self_refresh()
        self_refresh = component.power_watts
        assert 0 < self_refresh < active

    def test_self_refresh_power_frequency_independent(self):
        dram = make_dram()
        before = dram.self_refresh_power_watts()
        dram.set_frequency(0.8e9)
        assert dram.self_refresh_power_watts() == pytest.approx(before)

    def test_active_power_scales_with_frequency(self):
        dram = make_dram()
        at_full = dram.active_standby_power_watts()
        dram.set_frequency(0.8e9)
        assert dram.active_standby_power_watts() < at_full

    def test_access_energy_accumulates(self):
        dram = make_dram()
        dram.write(0, bytes(4096))
        assert dram.access_energy_joules > 0
        assert dram.bytes_written == 4096


class TestTimingAndFrequency:
    def test_bandwidth_formula(self):
        dram = make_dram(transfer_rate_hz=1.6e9, channels=2, bus_bytes=8, bus_efficiency=0.7)
        assert dram.bandwidth_bytes_per_s() == pytest.approx(1.6e9 * 8 * 2 * 0.7)

    def test_lower_frequency_means_longer_transfers(self):
        """Sec. 8.2: 'Memory bandwidth reduction increases the entry and
        exit latencies ... a longer time is needed to save/restore'."""
        dram = make_dram()
        fast = dram.transfer_latency_ps(200 * 1024)
        dram.set_frequency(0.8e9)
        slow = dram.transfer_latency_ps(200 * 1024)
        assert slow > fast

    def test_latency_has_fixed_and_streaming_parts(self):
        dram = make_dram()
        tiny = dram.transfer_latency_ps(64)
        large = dram.transfer_latency_ps(1 << 20)
        assert tiny >= dram.base_access_latency_ps
        assert large > 10 * tiny

    def test_zero_length_transfer_free(self):
        dram = make_dram()
        assert dram.transfer_latency_ps(0) == 0

    def test_retrain_requires_active_state(self):
        dram = make_dram()
        dram.enter_self_refresh()
        with pytest.raises(MemoryFault):
            dram.set_frequency(0.8e9)

    def test_invalid_frequency_rejected(self):
        dram = make_dram()
        with pytest.raises(MemoryFault):
            dram.set_frequency(0.0)
