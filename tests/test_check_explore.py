"""Exhaustive exploration and the invariant catalog (repro.check.explore).

The mutation tests are the heart of the checker's own validation: each
one deletes or perverts a single step of the shipped flow specs and
asserts the exploration produces exactly the diagnostic class the paper's
sequencing rules predict.  If the checker ever goes vacuous, these fail.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.check import check_model_view
from repro.check.explore import explore
from repro.check.invariants import BUILTIN_INVARIANTS, select_invariants
from repro.check.ts import compile_transition_system
from repro.core.techniques import TechniqueSet
from repro.lint.model import walk_model
from repro.system.flows import FlowStepSpec
from repro.system.skylake import SkylakePlatform

from test_check_ts import TinyModel


def odrips_view():
    return walk_model(SkylakePlatform(techniques=TechniqueSet.odrips()))


def drop_step(view, flow_name, label):
    for flow in view.flows:
        if flow.name == flow_name:
            steps = tuple(step for step in flow.steps if step.label != label)
            assert len(steps) == len(flow.steps) - 1, f"no step {label!r}"
            object.__setattr__(flow, "steps", steps)
    return view


def rules_of(report):
    return sorted({diag.rule for diag in report.diagnostics})


# --- the shipped model is exhaustively clean ---------------------------------


def test_shipped_model_explores_clean_and_exhaustively():
    report = check_model_view(odrips_view())
    assert report.diagnostics == []
    summary = report.state_space
    assert summary["truncated"] is False
    # BOOT + ACTIVE + 7 entry steps + DRIPS + 6 exit steps = 16 composed states
    assert summary["states_explored"] == 16
    assert summary["transitions_taken"] == 16
    assert len(summary["steps_executed"]) == 13
    assert summary["invariants_checked"] == [inv.name for inv in BUILTIN_INVARIANTS]


# --- seeded mutations: one real defect class per invariant -------------------


def test_dropping_clock_restart_is_a_clock_coupling_violation():
    """Delete exit:xtal-restart: compute resumes with clk-24mhz still gated."""
    report = check_model_view(drop_step(odrips_view(), "exit", "exit:xtal-restart"))
    assert rules_of(report) == ["C201", "C203"]
    c201 = next(d for d in report.diagnostics if d.rule == "C201")
    assert "proc.compute" in c201.message and "clk-24mhz" in c201.message
    assert "witness" in (c201.hint or "")


def test_dropping_compute_quiesce_is_a_clock_coupling_violation():
    """Delete entry:compute-quiesce: the entry flow gates the fast clock
    while the compute domain still executes (the AgileWatts bug class)."""
    report = check_model_view(drop_step(odrips_view(), "entry", "entry:compute-quiesce"))
    assert "C201" in rules_of(report)


def test_dropping_io_restore_deadlocks_the_second_cycle():
    """Delete exit:io-restore: the next entry's io-handoff requires the
    proc.aon_io domain the previous cycle left gated off."""
    report = check_model_view(drop_step(odrips_view(), "exit", "exit:io-restore"))
    assert rules_of(report) == ["C101", "C202"]
    c101 = next(d for d in report.diagnostics if d.rule == "C101")
    assert "entry:io-handoff" in c101.message
    assert "proc.aon_io" in c101.message


def test_unbalanced_ledger_back_in_active_is_c203():
    """Make the exit flow forget to resume the halted compute domain."""
    view = drop_step(odrips_view(), "exit", "exit:active")
    report = check_model_view(view)
    assert "C203" in rules_of(report)
    c203 = next(d for d in report.diagnostics if d.rule == "C203")
    assert "halted" in c203.message


def test_gating_every_wake_source_is_c204():
    view = odrips_view()
    for flow in view.flows:
        if flow.name == "entry":
            steps = list(flow.steps)
            steps[-1] = dataclasses.replace(
                steps[-1],
                gates_off=steps[-1].gates_off + ("proc.pmu", "pch.aon"),
            )
            object.__setattr__(flow, "steps", tuple(steps))
    report = check_model_view(view)
    assert "C204" in rules_of(report)
    c204 = next(d for d in report.diagnostics if d.rule == "C204")
    assert "DRIPS" in c204.message


# --- structural findings on synthetic models ---------------------------------


def test_detached_flow_steps_are_unreachable_c102():
    model = TinyModel(
        {"BOOT": ("ACTIVE",), "ACTIVE": ("BOOT",)},
        flows={"orphan": (FlowStepSpec("orphan:step"),)},
    )
    report = check_model_view(walk_model(model))
    assert rules_of(report) == ["C102"]
    assert "orphan" in report.diagnostics[0].message


def test_steps_after_a_blocked_requirement_are_unreachable_c102():
    model = TinyModel(
        {"BOOT": ("ENTRY",), "ENTRY": ("ACTIVE",), "ACTIVE": ("BOOT",)},
        flows={
            "entry": (
                FlowStepSpec("entry:kill", gates_off=("dom.a",)),
                FlowStepSpec("entry:use", requires=("dom.a",)),
                FlowStepSpec("entry:after"),
            )
        },
    )
    report = check_model_view(walk_model(model))
    rules = [diag.rule for diag in report.diagnostics]
    assert "C101" in rules  # the blocked step deadlocks the flow
    unreachable = {d.message for d in report.diagnostics if d.rule == "C102"}
    assert any("entry:use" in message for message in unreachable)
    assert any("entry:after" in message for message in unreachable)


def test_cycle_that_never_returns_to_active_is_c103():
    model = TinyModel(
        {"BOOT": ("SPIN",), "SPIN": ("SPIN2",), "SPIN2": ("SPIN",),
         "ACTIVE": ("SPIN",)},
    )
    report = check_model_view(walk_model(model))
    assert rules_of(report) == ["C103"]
    assert "ACTIVE" in report.diagnostics[0].message


def test_states_feeding_a_deadlock_are_not_livelock():
    """Cannot-return-to-active explained by a deadlock stays a C101 only."""
    model = TinyModel({"BOOT": ("MID",), "MID": ("END",), "ACTIVE": ("BOOT",)})
    report = check_model_view(walk_model(model))
    assert rules_of(report) == ["C101"]


def test_truncated_exploration_warns_and_suppresses_absence_findings():
    ts, _ = compile_transition_system(odrips_view())
    result = explore(ts, BUILTIN_INVARIANTS, max_states=4)
    assert result.truncated is True
    rules = {diag.rule for diag in result.diagnostics}
    assert "C104" in rules
    assert "C102" not in rules and "C103" not in rules


# --- invariant selection ------------------------------------------------------


def test_invariant_selection_narrows_the_checked_set():
    view = drop_step(odrips_view(), "exit", "exit:xtal-restart")
    report = check_model_view(view, invariant_names=("rails-restored",))
    assert rules_of(report) == []  # C201/C203 are not evaluated
    assert report.state_space["invariants_checked"] == ["rails-restored"]


def test_unknown_invariant_name_raises():
    with pytest.raises(ValueError, match="unknown invariant"):
        select_invariants(("no-such-invariant",))
