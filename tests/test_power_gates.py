"""Tests for power gates (EPG vs board FET, Sec. 5.1)."""

import pytest

from repro.errors import PowerError
from repro.power.gates import BoardFETGate, EmbeddedPowerGate, PowerGate


class TestGateMechanics:
    def test_closed_gate_passes_load(self):
        gate = PowerGate("g")
        assert gate.delivered_power(1.0) == pytest.approx(1.0)

    def test_open_gate_leaks_fraction(self):
        gate = BoardFETGate("fet", closed=False)
        assert gate.delivered_power(1.0) == pytest.approx(gate.leakage_fraction)

    def test_switch_counting(self):
        gate = PowerGate("g")
        gate.open()
        gate.close()
        gate.close()  # no-op
        assert gate.switch_count == 2

    def test_negative_load_rejected(self):
        gate = PowerGate("g")
        with pytest.raises(PowerError):
            gate.delivered_power(-1.0)


class TestPaperComparison:
    def test_fet_leaks_less_than_epg(self):
        """Sec. 5.1: the FET 'has less leakage compared to EPG'."""
        assert BoardFETGate.leakage_fraction < EmbeddedPowerGate.leakage_fraction

    def test_fet_leakage_below_paper_bound(self):
        """Sec. 5.3: FET leakage 'less than 0.3% of the gated load'."""
        assert BoardFETGate.leakage_fraction < 0.003

    def test_fet_conduction_loss_small(self):
        gate = BoardFETGate("fet")
        assert gate.delivered_power(1.0) < 1.01

    def test_fet_gpio_binding(self):
        gate = BoardFETGate("fet")
        assert gate.control_gpio is None
        gate.bind_gpio(49)
        assert gate.control_gpio == 49
