"""Differential explainer tests: perturbations, diffs, history, CLI.

Exercises ``repro.obs.diff`` end to end: the perturbation registry and
its parser, deterministic seeded-fault ranking (a +20% DRAM self-refresh
budget must pin board x drips x steady-idle as the top contributor),
profile caching, the macro-vs-exact refusal, history mode over the
flight recorder, the drift-verdict embedding in ``repro report``, the
runlog backend provenance, the ledger rollup row, and the ``repro
explain`` exit-code contract.
"""

from __future__ import annotations

import json

import pytest

from repro import cli, obs
from repro.errors import ConfigError, MeasurementError
from repro.obs.diff import (
    EXPLAIN_SCHEMA,
    PERTURBATIONS,
    RunProfile,
    apply_perturbation,
    diff_profiles,
    explain_history,
    explain_simulate,
    explain_summary,
    parse_perturbation,
    ranked_contributors,
    render_explain,
    validate_explain_payload,
)
from repro.obs.runlog import RUNLOG_DIR_ENV, RunLog, RunRecorder
from repro.perf.cache import SimulationCache
from repro.regress.report import build_report, render_text

PERTURBED_CELL = ("board", "drips", "steady-idle")


@pytest.fixture(scope="module")
def perturbed():
    """One seeded-fault explain payload (shared: the runs are real)."""
    return explain_simulate("fig2", perturb="dram-self-refresh=1.2", cycles=1)


@pytest.fixture
def store(tmp_path, monkeypatch):
    directory = tmp_path / "runs"
    monkeypatch.setenv(RUNLOG_DIR_ENV, str(directory))
    return RunLog(directory)


def fig2_record(drips_power_mw=60.0, fingerprint="f" * 64, macro=None):
    record = {
        "experiment": "fig2",
        "fingerprint": fingerprint,
        "metrics": {
            "average_power_mw": 74.4,
            "drips_power_mw": drips_power_mw,
            "active_power_w": 3.04,
            "drips_residency": 0.995,
        },
    }
    if macro is not None:
        record["macro"] = macro
    return record


def make_profile(macro_enabled=False, fingerprint="p-exact", cells=None):
    return RunProfile(
        label="fig2",
        target="fig2",
        fingerprint=fingerprint,
        metrics={"average_power_w": 0.0744},
        cells=dict(cells or {PERTURBED_CELL: 1.0}),
        macro={
            "enabled": macro_enabled,
            "cycles_compiled": 9 if macro_enabled else 0,
            "steps": 1 if macro_enabled else 0,
        },
    )


class TestPerturbations:
    def test_parse_roundtrip(self):
        assert parse_perturbation("dram-self-refresh=1.2") == (
            "dram-self-refresh",
            1.2,
        )

    @pytest.mark.parametrize(
        "spec", ["dram-self-refresh", "dram-self-refresh=lots", "bogus=2.0"]
    )
    def test_parse_rejects_malformed_specs(self, spec):
        with pytest.raises(ConfigError):
            parse_perturbation(spec)

    def test_dram_perturbation_scales_only_the_budget_knob(self):
        config, workload, kwargs = apply_perturbation("dram-self-refresh", 1.2)
        base_config, base_workload, _ = apply_perturbation("dram-self-refresh", 1.0)
        assert config.budget.dram_self_refresh_w == pytest.approx(
            base_config.budget.dram_self_refresh_w * 1.2
        )
        assert workload == base_workload
        assert kwargs == {}

    def test_external_wake_perturbation_enables_wakes_on_both_sides(self):
        config, workload, kwargs = apply_perturbation("external-wake-rate", 2.0)
        base_config, base_workload, _ = apply_perturbation("external-wake-rate", 1.0)
        assert config == base_config
        assert workload.external_wake_rate_per_hour == pytest.approx(
            base_workload.external_wake_rate_per_hour * 2.0
        )
        assert kwargs == {"external_wakes": True}

    def test_unknown_perturbation_raises(self):
        with pytest.raises(ConfigError):
            apply_perturbation("bogus", 2.0)

    def test_registry_entries_are_described(self):
        assert set(PERTURBATIONS) >= {"dram-self-refresh", "external-wake-rate"}
        assert all(PERTURBATIONS.values())


class TestSeededFaultRanking:
    def test_payload_conforms(self, perturbed):
        assert perturbed["schema"] == EXPLAIN_SCHEMA
        assert validate_explain_payload(perturbed) == []

    def test_perturbed_cell_ranks_top(self, perturbed):
        """The acceptance gate: the injected fault is the verdict."""
        top = perturbed["contributors"][0]
        assert (top["domain"], top["state"], top["cause"]) == PERTURBED_CELL
        assert top["delta_j"] > 0
        assert top["share"] == max(c["share"] for c in perturbed["contributors"])
        assert perturbed["energy_delta_j"] > 0

    def test_perturbation_is_recorded(self, perturbed):
        assert perturbed["perturbation"] == {"key": "dram-self-refresh", "factor": 1.2}
        assert perturbed["compatible"] is True
        assert perturbed["base"]["backend"] == perturbed["subject"]["backend"] == (
            "exact"
        )

    def test_ranking_is_deterministic(self, perturbed):
        again = explain_simulate(
            "fig2", perturb="dram-self-refresh=1.2", cycles=1
        )
        assert json.dumps(again, sort_keys=True) == json.dumps(
            perturbed, sort_keys=True
        )

    def test_render_names_the_verdict(self, perturbed):
        text = render_explain(perturbed)
        assert "top contributor: board x drips x steady-idle" in text
        assert "simulate" in text

    def test_two_target_mode_diffs_technique_sets(self):
        cache = SimulationCache()
        payload = explain_simulate("fig2", target2="odrips", cycles=1, cache=cache)
        assert payload["compatible"] is True
        assert payload["contributors"]
        assert payload["base"]["target"] == "fig2"
        assert payload["subject"]["target"] == "odrips"
        assert validate_explain_payload(payload) == []
        # the profiles were memoized: asking again must not re-simulate
        misses = cache.stats.misses
        explain_simulate("fig2", target2="odrips", cycles=1, cache=cache)
        assert cache.stats.misses == misses

    def test_explain_needs_two_runs(self):
        with pytest.raises(ConfigError):
            explain_simulate("fig2", cycles=1)

    def test_unknown_target_raises(self):
        with pytest.raises(ConfigError):
            explain_simulate("fig2", target2="warp-drive", cycles=1)


class TestRankedContributors:
    def test_ranked_by_absolute_delta_with_cell_tiebreak(self):
        base = {("a", "s", "c"): 1.0, ("b", "s", "c"): 2.0}
        subject = {
            ("a", "s", "c"): 1.5,
            ("b", "s", "c"): 2.0,
            ("c", "s", "c"): 0.5,
        }
        rows = ranked_contributors(base, subject)
        assert [row["domain"] for row in rows] == ["a", "c", "b"]
        assert rows[0]["share"] == pytest.approx(0.5)
        assert rows[2]["delta_j"] == 0.0
        assert sum(row["share"] for row in rows) == pytest.approx(1.0)


class TestBackendRefusal:
    def test_run_profile_backend(self):
        assert make_profile(macro_enabled=False).backend == "exact"
        assert make_profile(macro_enabled=True).backend == "macro"

    def test_macro_vs_exact_is_refused(self):
        payload = diff_profiles(
            make_profile(macro_enabled=False),
            make_profile(macro_enabled=True, fingerprint="p-macro"),
        )
        assert payload["compatible"] is False
        assert "refusing to diff" in payload["reason"]
        assert payload["contributors"] == []
        assert validate_explain_payload(payload) == []
        assert "INCOMPATIBLE" in render_explain(payload)

    def test_matched_backends_are_diffed(self):
        payload = diff_profiles(
            make_profile(macro_enabled=True),
            make_profile(macro_enabled=True, fingerprint="p-macro-2"),
        )
        assert payload["compatible"] is True
        assert payload["reason"] == ""


class TestHistoryMode:
    def test_latest_two_records_are_compared(self, store):
        store.append(fig2_record(60.0, fingerprint="a" * 64))
        store.append(fig2_record(75.0, fingerprint="a" * 64))
        payload = explain_history("fig2", runlog=store)
        assert payload["mode"] == "history"
        assert payload["compatible"] is True
        assert payload["config_drift"] is False
        deltas = {row["metric"]: row["delta"] for row in payload["metric_deltas"]}
        assert deltas["drips_power_mw"] == pytest.approx(15.0)

    def test_config_drift_is_flagged(self, store):
        store.append(fig2_record(fingerprint="a" * 64))
        store.append(fig2_record(fingerprint="b" * 64))
        assert explain_history("fig2", runlog=store)["config_drift"] is True

    def test_macro_vs_exact_history_is_refused(self, store):
        store.append(fig2_record(macro={"enabled": False}))
        store.append(
            fig2_record(macro={"enabled": True, "cycles_compiled": 9, "steps": 1})
        )
        payload = explain_history("fig2", runlog=store)
        assert payload["compatible"] is False
        assert payload["metric_deltas"] == []

    def test_fewer_than_two_runs_raises(self, store):
        store.append(fig2_record())
        with pytest.raises(MeasurementError, match="need two recorded runs"):
            explain_history("fig2", runlog=store)

    def test_summary_is_none_without_history(self, store):
        assert explain_summary("fig2", runlog=store) is None

    def test_summary_digest(self, store):
        store.append(fig2_record(60.0))
        store.append(fig2_record(75.0))
        digest = explain_summary("fig2", runlog=store, top=1)
        assert digest["compatible"] is True
        assert len(digest["top"]) == 1
        assert digest["top"][0]["metric"] == "drips_power_mw"


class TestReportEmbedding:
    def test_drifted_golden_carries_explainer(self, store):
        store.append(fig2_record(60.0))
        store.append(fig2_record(75.0))  # latest: out of tolerance
        report = build_report(runlog=store, bench_path="does-not-exist.json")
        drifted = [f for f in report["findings"] if not f["within"]]
        assert drifted
        explain = drifted[0]["explain"]
        assert explain["compatible"] is True
        assert any(row["metric"] == "drips_power_mw" for row in explain["top"])
        text = render_text(report)
        assert "Drift explainers" in text
        assert "drips_power_mw" in text

    def test_single_run_drift_reports_without_explainer(self, store):
        store.append(fig2_record(75.0))
        report = build_report(runlog=store, bench_path="does-not-exist.json")
        drifted = [f for f in report["findings"] if not f["within"]]
        assert drifted
        assert all("explain" not in f for f in drifted)
        assert "Drift explainers" not in render_text(report)


class TestRunlogProvenance:
    def test_experiment_record_aggregates_macro_provenance(self):
        recorder = RunRecorder()
        recorder.measurement(
            "a", 0.1, False, macro={"enabled": True, "cycles_compiled": 9, "steps": 1}
        )
        recorder.measurement(
            "b", 0.1, False, macro={"enabled": False, "cycles_compiled": 0, "steps": 0}
        )
        record = recorder.experiment(
            name="fig2", fingerprint="f" * 64, wall_s=0.2, metrics={}, goldens={}
        )
        assert record["macro"] == {
            "enabled": True,
            "cycles_compiled": 9,
            "steps": 1,
        }

    def test_exact_only_measurements_leave_backend_exact(self):
        recorder = RunRecorder()
        recorder.measurement(
            "a", 0.1, False, macro={"enabled": False, "cycles_compiled": 0, "steps": 0}
        )
        record = recorder.experiment(
            name="fig2", fingerprint="f" * 64, wall_s=0.1, metrics={}, goldens={}
        )
        assert record["macro"]["enabled"] is False


class TestLedgerRollupRow:
    def test_truncated_rows_roll_the_tail_into_one_row(self):
        session = obs.run_traced("fig2", cycles=1)
        full = session.ledger.step_rows()
        limited = session.ledger.step_rows(limit=1)
        assert len(full) > 2
        assert len(limited) == 2
        label, domain, joules = limited[1]
        assert label.startswith(f"(+{len(full) - 1} more, ")
        assert label.endswith(" mJ)")
        assert domain == ""
        assert sum(row[2] for row in limited) == pytest.approx(
            sum(row[2] for row in full)
        )


class TestExplainCLI:
    def test_perturb_run_exits_zero_with_valid_json(self, capsys):
        code = cli.main(
            [
                "explain",
                "fig2",
                "--perturb",
                "dram-self-refresh=1.2",
                "--cycles",
                "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_explain_payload(payload) == []
        top = payload["contributors"][0]
        assert (top["domain"], top["state"], top["cause"]) == PERTURBED_CELL

    def test_malformed_perturbation_is_a_usage_error(self, capsys):
        assert cli.main(["explain", "fig2", "--perturb", "bogus=2.0"]) == 2
        assert "unknown perturbation" in capsys.readouterr().err

    def test_missing_second_run_is_a_usage_error(self, capsys):
        assert cli.main(["explain", "fig2"]) == 2
        assert "two runs" in capsys.readouterr().err

    def test_empty_history_is_a_usage_error(self, store, capsys):
        assert cli.main(["explain", "fig2", "--history"]) == 2
        assert "need two recorded runs" in capsys.readouterr().err

    def test_incompatible_history_exits_one(self, store, capsys):
        store.append(fig2_record(macro={"enabled": False}))
        store.append(
            fig2_record(macro={"enabled": True, "cycles_compiled": 9, "steps": 1})
        )
        assert cli.main(["explain", "fig2", "--history"]) == 1
        assert "refusing to diff" in capsys.readouterr().out
