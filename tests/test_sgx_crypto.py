"""Tests for the MEE crypto primitives."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SecurityError
from repro.sgx.crypto import (
    CtrCipher,
    MacKey,
    derive_key,
    pack_counter,
    unpack_counter,
)

MASTER = b"master-key-material-0123456789ab"


class TestKeyDerivation:
    def test_domain_separation(self):
        assert derive_key(MASTER, "encrypt") != derive_key(MASTER, "mac")

    def test_deterministic(self):
        assert derive_key(MASTER, "x") == derive_key(MASTER, "x")

    def test_empty_master_rejected(self):
        with pytest.raises(SecurityError):
            derive_key(b"", "x")


class TestCtrCipher:
    def setup_method(self):
        self.cipher = CtrCipher(derive_key(MASTER, "enc"))

    def test_roundtrip(self):
        plaintext = b"the processor context" * 3
        ciphertext = self.cipher.encrypt(0x1000, 7, plaintext)
        assert self.cipher.decrypt(0x1000, 7, ciphertext) == plaintext

    def test_ciphertext_differs_from_plaintext(self):
        plaintext = bytes(64)
        assert self.cipher.encrypt(0, 0, plaintext) != plaintext

    def test_version_changes_keystream(self):
        """Temporal uniqueness: bumping the version re-keys the block."""
        plaintext = bytes(64)
        assert self.cipher.encrypt(0, 1, plaintext) != self.cipher.encrypt(0, 2, plaintext)

    def test_address_changes_keystream(self):
        """Spatial uniqueness: same data at different addresses differs."""
        plaintext = bytes(64)
        assert self.cipher.encrypt(0, 1, plaintext) != self.cipher.encrypt(64, 1, plaintext)

    def test_short_key_rejected(self):
        with pytest.raises(SecurityError):
            CtrCipher(b"short")

    @given(st.binary(min_size=0, max_size=300), st.integers(0, 2**63), st.integers(0, 2**63))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data, address, version):
        ciphertext = self.cipher.encrypt(address, version, data)
        assert len(ciphertext) == len(data)
        assert self.cipher.decrypt(address, version, ciphertext) == data


class TestMac:
    def setup_method(self):
        self.mac = MacKey(derive_key(MASTER, "mac"))

    def test_verify_accepts_genuine_tag(self):
        tag = self.mac.tag(b"part1", b"part2")
        assert self.mac.verify(tag, b"part1", b"part2")

    def test_verify_rejects_tampered_content(self):
        tag = self.mac.tag(b"part1", b"part2")
        assert not self.mac.verify(tag, b"part1", b"partX")

    def test_length_prefixing_prevents_boundary_shifts(self):
        """('ab','c') and ('a','bc') must not collide."""
        assert self.mac.tag(b"ab", b"c") != self.mac.tag(b"a", b"bc")

    def test_different_keys_different_tags(self):
        other = MacKey(derive_key(MASTER, "other"))
        assert self.mac.tag(b"data") != other.tag(b"data")

    def test_tag_length(self):
        assert len(self.mac.tag(b"x")) == 8


class TestCounterSerialization:
    def test_roundtrip(self):
        assert unpack_counter(pack_counter(123456789)) == 123456789

    def test_wraps_at_64_bits(self):
        assert unpack_counter(pack_counter(2**64 + 5)) == 5

    def test_bad_length_rejected(self):
        with pytest.raises(SecurityError):
            unpack_counter(b"\x00" * 7)
