"""Determinism: identical configurations produce bit-identical runs.

A reproduction's results must be exactly re-derivable: no hidden clocks,
no unseeded randomness, no dict-ordering dependence.  Two independent
platforms built from the same inputs must agree on every trace sample.
"""

import pytest

from repro.core.odrips import ODRIPSController
from repro.core.techniques import TechniqueSet
from repro.workloads.standby import ConnectedStandbyRunner
from repro.workloads.traces import TraceDrivenRunner, chatty_night_trace

from _platform import build_platform


def run_standby(techniques, **kwargs):
    platform = build_platform(techniques, small_context=True)
    runner = ConnectedStandbyRunner(platform, **kwargs)
    result = runner.run(cycles=2)
    return platform, result


class TestRunDeterminism:
    @pytest.mark.parametrize(
        "techniques",
        [TechniqueSet.baseline(), TechniqueSet.odrips(), TechniqueSet.odrips_pcm()],
        ids=lambda t: t.label(),
    )
    def test_identical_average_power(self, techniques):
        _p1, first = run_standby(techniques, idle_interval_s=0.5, maintenance_s=0.03)
        _p2, second = run_standby(techniques, idle_interval_s=0.5, maintenance_s=0.03)
        assert first.average_power_w == second.average_power_w  # exact, no approx

    def test_identical_wake_times(self):
        p1, first = run_standby(TechniqueSet.odrips(), idle_interval_s=0.5,
                                maintenance_s=0.03)
        p2, second = run_standby(TechniqueSet.odrips(), idle_interval_s=0.5,
                                 maintenance_s=0.03)
        assert [e.time_ps for e in p1.wake_log] == [e.time_ps for e in p2.wake_log]

    def test_identical_power_traces(self):
        p1, _ = run_standby(TechniqueSet.odrips(), idle_interval_s=0.3,
                            maintenance_s=0.02)
        p2, _ = run_standby(TechniqueSet.odrips(), idle_interval_s=0.3,
                            maintenance_s=0.02)
        samples_a = [(s.time_ps, s.value) for s in p1.trace.samples("platform")]
        samples_b = [(s.time_ps, s.value) for s in p2.trace.samples("platform")]
        assert samples_a == samples_b

    def test_identical_flow_latencies(self):
        p1, first = run_standby(TechniqueSet.ctx_sgx_dram_only(),
                                idle_interval_s=0.3, maintenance_s=0.02)
        p2, second = run_standby(TechniqueSet.ctx_sgx_dram_only(),
                                 idle_interval_s=0.3, maintenance_s=0.02)
        assert first.entry_latencies_ps == second.entry_latencies_ps
        assert first.exit_latencies_ps == second.exit_latencies_ps

    def test_trace_replay_is_deterministic(self):
        trace = chatty_night_trace(duration_s=95.0, seed=3)
        results = []
        for _ in range(2):
            platform = build_platform(TechniqueSet.odrips(), small_context=True)
            results.append(TraceDrivenRunner(platform, trace).run())
        assert results[0].average_power_w == results[1].average_power_w
        assert results[0].wake_events == results[1].wake_events

    def test_seeded_randomization_is_deterministic(self):
        from repro.config import StandbyWorkloadConfig

        outcomes = []
        for _ in range(2):
            platform = build_platform(TechniqueSet.baseline(), small_context=True)
            runner = ConnectedStandbyRunner(
                platform,
                workload=StandbyWorkloadConfig(seed=17),
                idle_interval_s=0.4,
                randomize_maintenance=True,
                external_wakes=True,
            )
            outcomes.append(runner.run(cycles=2).average_power_w)
        assert outcomes[0] == outcomes[1]

    def test_mee_ciphertext_is_deterministic(self):
        """Same key, same context generation, same version counters ->
        the same ciphertext lands in DRAM on both platforms."""
        p1, _ = run_standby(TechniqueSet.odrips(), idle_interval_s=0.3,
                            maintenance_s=0.02)
        p2, _ = run_standby(TechniqueSet.odrips(), idle_interval_s=0.3,
                            maintenance_s=0.02)
        base = p1.context_region.base
        assert p1.board.memory._store.read(base, 256) == \
            p2.board.memory._store.read(base, 256)
