"""Tests for the time-stamp counter."""

import pytest

from repro.errors import TimerError
from repro.timers.tsc import TimeStampCounter


@pytest.fixture
def tsc(fast_clock):
    return TimeStampCounter("tsc", fast_clock)


class TestCounting:
    def test_counts_edges_from_zero(self, tsc, fast_clock):
        period = fast_clock.period_ps
        assert tsc.read(0) == 0
        assert tsc.read(period) == 1
        assert tsc.read(10 * period) == 10
        assert tsc.read(10 * period + period // 2) == 10

    def test_load_rebases(self, tsc, fast_clock):
        period = fast_clock.period_ps
        tsc.load(5 * period, 1_000_000)
        assert tsc.read(5 * period) == 1_000_000
        assert tsc.read(7 * period) == 1_000_002

    def test_load_mid_cycle_snaps_to_edge(self, tsc, fast_clock):
        period = fast_clock.period_ps
        tsc.load(5 * period + period // 3, 100)
        # next edge (6*period) increments
        assert tsc.read(6 * period) == 101

    def test_load_range_check(self, tsc):
        with pytest.raises(TimerError):
            tsc.load(0, -1)
        with pytest.raises(TimerError):
            tsc.load(0, 1 << 64)

    def test_wraparound_mask(self, tsc, fast_clock):
        period = fast_clock.period_ps
        tsc.load(0, (1 << 64) - 1)
        assert tsc.read(period) == 0  # wrapped


class TestFreezeThaw:
    def test_freeze_holds_value(self, tsc, fast_clock):
        period = fast_clock.period_ps
        value = tsc.freeze(10 * period)
        assert value == 10
        assert tsc.read(100 * period) == 10
        assert tsc.frozen

    def test_double_freeze_returns_same(self, tsc, fast_clock):
        period = fast_clock.period_ps
        first = tsc.freeze(10 * period)
        second = tsc.freeze(20 * period)
        assert first == second

    def test_thaw_resumes_counting(self, tsc, fast_clock):
        period = fast_clock.period_ps
        tsc.freeze(10 * period)
        tsc.thaw(20 * period, 500)
        assert tsc.read(20 * period) == 500
        assert tsc.read(22 * period) == 502

    def test_thaw_without_freeze_rejected(self, tsc):
        with pytest.raises(TimerError):
            tsc.thaw(0)

    def test_thaw_defaults_to_frozen_value(self, tsc, fast_clock):
        period = fast_clock.period_ps
        tsc.freeze(10 * period)
        tsc.thaw(20 * period)
        assert tsc.read(20 * period) == 10


class TestDeadlines:
    def test_time_of_future_count(self, tsc, fast_clock):
        period = fast_clock.period_ps
        when = tsc.time_of_count(100, now_ps=0)
        assert when == 100 * period
        assert tsc.read(when) == 100

    def test_time_of_past_count_is_now(self, tsc, fast_clock):
        period = fast_clock.period_ps
        assert tsc.time_of_count(5, now_ps=10 * period) == 10 * period

    def test_frozen_counter_has_no_deadlines(self, tsc):
        tsc.freeze(0)
        with pytest.raises(TimerError):
            tsc.time_of_count(100, 0)
