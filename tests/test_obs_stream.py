"""Tests for repro.obs.stream: bounded aggregation, heartbeats, purity.

Covers the streaming-telemetry tentpole end to end — the
:class:`~repro.obs.metrics.BoundedHistogram` edge cases the ISSUE pins
(empty percentile, disjoint-range merges, negative/zero values, snapshot
round-trips), the rolling windows, the heartbeat files, the sweep
fan-out (serial and forced-parallel, the merge-correctness acceptance
anchor), and the bit-for-bit purity guarantee: simulation results are
identical with and without a stream installed.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.sweep import sweep
from repro.core.odrips import ODRIPSController
from repro.errors import MeasurementError
from repro.obs.metrics import BoundedHistogram, Histogram, MetricsRegistry
from repro.obs.stream import (
    HEARTBEAT_SCHEMA,
    RollingWindow,
    TelemetryStream,
    active_stream,
    install_stream,
    merge_worker_heartbeats,
    read_heartbeat_dir,
    record_worker_point,
    streaming,
    uninstall_stream,
)
from repro.units import PICOSECONDS_PER_SECOND


def _square(value):
    """Module-level sweep experiment (picklable for worker processes)."""
    return value * value


class TestBoundedHistogram:
    def test_count_sum_min_max_match_exact(self):
        """The bounded aggregate keeps exact count/sum/min/max."""
        values = [0.003, 0.7, 1.0, 2.5, 14.0, 14.0, 311.0]
        bounded = BoundedHistogram("t")
        exact = Histogram("t")
        for value in values:
            bounded.observe(value)
            exact.observe(value)
        assert bounded.count == exact.count == len(values)
        assert bounded.total == exact.total
        assert bounded.mean == exact.mean
        assert bounded.min_value == min(values)
        assert bounded.max_value == max(values)

    def test_negative_and_zero_values(self):
        hist = BoundedHistogram("t")
        for value in (-5.0, 0.0, 0.0, 3.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.zeros == 2
        assert hist.total == -2.0
        assert hist.min_value == -5.0
        assert hist.max_value == 3.0
        uppers = [upper for upper, _count in hist.cumulative_buckets()]
        assert uppers == sorted(uppers)  # negatives, zero, positives
        assert uppers[0] < 0.0 < uppers[-1]
        assert hist.cumulative_buckets()[-1][1] == 4

    def test_merge_disjoint_bucket_ranges(self):
        """Merging histograms with no shared buckets adds exactly."""
        small = BoundedHistogram("t")
        large = BoundedHistogram("t")
        small_values = [1e-6, 3e-6, 9e-6]
        large_values = [1e6, 4e6]
        for value in small_values:
            small.observe(value)
        for value in large_values:
            large.observe(value)
        small.merge(large)
        assert small.count == 5
        assert small.total == sum(small_values) + sum(large_values)
        assert small.min_value == 1e-6
        assert small.max_value == 4e6
        cumulative = small.cumulative_buckets()
        counts = [count for _upper, count in cumulative]
        assert counts == sorted(counts)  # monotone
        assert counts[-1] == 5

    def test_merge_base_mismatch_raises(self):
        with pytest.raises(MeasurementError):
            BoundedHistogram("a", base=1.2).merge(BoundedHistogram("b", base=2.0))

    def test_merge_empty_is_noop(self):
        hist = BoundedHistogram("t")
        hist.observe(1.0)
        hist.merge(BoundedHistogram("other"))
        assert hist.count == 1 and hist.total == 1.0

    def test_snapshot_round_trip(self):
        hist = BoundedHistogram("t")
        for value in (-2.5, 0.0, 1e-9, 42.0, 42.0, 7e11):
            hist.observe(value)
        snap = json.loads(json.dumps(hist.snapshot()))  # through JSON, like a worker
        clone = BoundedHistogram.from_snapshot(snap)
        assert clone.snapshot() == hist.snapshot()
        assert clone.percentile(0.5) == hist.percentile(0.5)

    def test_from_snapshot_malformed_raises(self):
        with pytest.raises(MeasurementError):
            BoundedHistogram.from_snapshot({"name": "t"})

    def test_percentile_empty_raises_typed_error(self):
        """Both flavours: a percentile of nothing is a question, not 0."""
        with pytest.raises(MeasurementError):
            BoundedHistogram("t").percentile(0.5)
        with pytest.raises(MeasurementError):
            Histogram("t").percentile(0.5)

    def test_percentile_bucket_error_bound(self):
        """p50 lands within the sqrt(base)-1 relative bound, in [min, max]."""
        values = [1.0 + 0.37 * i for i in range(101)]
        bounded = BoundedHistogram("t")
        exact = Histogram("t")
        for value in values:
            bounded.observe(value)
            exact.observe(value)
        p50_exact = exact.percentile(0.5)
        p50_bounded = bounded.percentile(0.5)
        bound = math.sqrt(bounded.base) - 1.0
        assert abs(p50_bounded - p50_exact) / p50_exact <= bound + 1e-9
        assert bounded.min_value <= p50_bounded <= bounded.max_value

    def test_non_finite_observation_raises(self):
        with pytest.raises(MeasurementError):
            BoundedHistogram("t").observe(float("nan"))

    def test_registry_bounded_flag(self):
        registry = MetricsRegistry()
        assert isinstance(registry.histogram("a", bounded=True), BoundedHistogram)
        assert isinstance(registry.histogram("b"), Histogram)
        # flavour fixed at first creation; later lookups reuse it
        assert registry.histogram("a") is registry.histogram("a", bounded=True)
        snap = registry.snapshot()["histograms"]
        assert snap["a"]["bounded"] is True
        assert snap["b"]["bounded"] is False


class TestRollingWindow:
    def test_evicts_outside_simulated_window(self):
        window = RollingWindow("w", window_ps=100)
        window.observe(0, 1.0)
        window.observe(50, 2.0)
        window.observe(160, 3.0)  # horizon 60: evicts t=0 and t=50
        assert window.count == 1
        assert window.total == 3.0

    def test_non_positive_span_raises(self):
        with pytest.raises(MeasurementError):
            RollingWindow("w", window_ps=0)

    def test_rate_per_sim_second(self):
        window = RollingWindow("w", window_ps=10 * PICOSECONDS_PER_SECOND)
        window.observe(0, 1.0)
        window.observe(PICOSECONDS_PER_SECOND, 1.0)
        assert window.rate_per_sim_second() == pytest.approx(1.0)

    def test_maxlen_bounds_memory(self):
        window = RollingWindow("w", window_ps=10**15, maxlen=8)
        for index in range(100):
            window.observe(index, 1.0)
        assert window.count == 8


class TestTelemetryStream:
    def test_heartbeat_payload_shape(self):
        stream = TelemetryStream()
        stream.set_label("experiment", "fig2")
        beat = stream.heartbeat(
            "runner", done=2, total=4, sim_now_ps=PICOSECONDS_PER_SECOND, events=10
        )
        assert beat["schema"] == HEARTBEAT_SCHEMA
        assert beat["frac"] == 0.5
        assert beat["sim_s"] == 1.0
        assert beat["label"] == "fig2"  # falls back to the experiment label
        assert beat["eta_s"] is not None and beat["eta_s"] >= 0.0
        done = stream.heartbeat("runner", done=4, total=4)
        assert done["eta_s"] is None  # completed: no ETA
        assert stream.heartbeats["runner"] is done  # latest wins

    def test_heartbeat_mirror_file_round_trips(self, tmp_path):
        stream = TelemetryStream(heartbeat_dir=tmp_path)
        stream.heartbeat("macro engine", done=1, total=2)
        entries = read_heartbeat_dir(tmp_path)
        assert len(entries) == 1
        path, payload = entries[0]
        assert path.name == "hb-macro-engine.json"  # sanitized source name
        assert payload["source"] == "macro engine"

    def test_reader_skips_torn_and_foreign_files(self, tmp_path):
        (tmp_path / "torn.json").write_text('{"schema": "repro-hear')
        (tmp_path / "foreign.json").write_text('{"schema": "other/1"}')
        stream = TelemetryStream(heartbeat_dir=tmp_path)
        stream.heartbeat("runner", done=1, total=1)
        assert [p["source"] for _f, p in read_heartbeat_dir(tmp_path)] == ["runner"]

    def test_snapshot_is_sorted_and_json_able(self):
        stream = TelemetryStream()
        stream.set_label("experiment", "fig2")
        stream.histogram("b").observe(1.0)
        stream.histogram("a").observe(2.0)
        stream.window("w", window_ps=100).observe(10, 1.0)
        stream.heartbeat("runner", done=1, total=1)
        snap = json.loads(json.dumps(stream.snapshot()))
        assert list(snap["histograms"]) == ["a", "b"]
        assert snap["windows"]["w"]["count"] == 1
        assert snap["labels"] == {"experiment": "fig2"}


class TestWorkerHeartbeats:
    def test_record_and_merge_worker_points(self, tmp_path):
        record_worker_point(str(tmp_path), 4.0, 0.25, points_total=3)
        record_worker_point(str(tmp_path), 9.0, 0.50, points_total=3)
        files = list(tmp_path.glob("worker-*.json"))
        assert len(files) == 1  # same pid: atomic replace, latest state
        merged = merge_worker_heartbeats(tmp_path)
        assert merged["sweep.worker_result"].count == 2
        assert merged["sweep.worker_result"].total == 13.0
        assert merged["sweep.worker_wall_s"].total == pytest.approx(0.75)

    def test_absorb_merges_into_existing_histograms(self, tmp_path):
        record_worker_point(str(tmp_path), 4.0, 0.25, points_total=1)
        stream = TelemetryStream(heartbeat_dir=tmp_path)
        stream.histogram("sweep.worker_result").observe(1.0)
        absorbed = stream.absorb_worker_heartbeats()
        assert absorbed == 1
        assert stream.histograms["sweep.worker_result"].count == 2
        assert stream.histograms["sweep.worker_result"].total == 5.0
        assert any(
            source.startswith("sweep-worker-") for source in stream.heartbeats
        )

    def test_absorb_without_directory_is_noop(self):
        assert TelemetryStream().absorb_worker_heartbeats() == 0


class TestSweepStreaming:
    def test_serial_sweep_emits_live_progress(self):
        with streaming() as stream:
            rows = sweep([1.0, 2.0, 3.0], _square)
        assert [result for _value, result in rows] == [1.0, 4.0, 9.0]
        hist = stream.histograms["sweep.point_result"]
        assert hist.count == 3
        assert hist.total == 14.0  # exact sum survives the bounded aggregate
        beat = stream.heartbeats["sweep"]
        assert (beat["done"], beat["total"]) == (3, 3)

    def test_parallel_sweep_merges_worker_histograms(self, tmp_path):
        """The acceptance anchor: a forced-parallel sweep with heartbeats
        yields per-worker files and a merged bounded histogram whose
        count and sum match the exact per-point results."""
        values = [1.0, 2.0, 3.0, 4.0]
        serial = sweep(values, _square)
        stream = TelemetryStream(heartbeat_dir=tmp_path)
        with streaming(stream):
            parallel = sweep(values, _square, parallel=True, max_workers=2)
        assert parallel == serial  # identical ordered pairs

        assert list(tmp_path.glob("worker-*.json"))  # live per-worker snapshots
        exact = [result for _value, result in serial]
        merged = merge_worker_heartbeats(tmp_path)["sweep.worker_result"]
        assert merged.count == len(exact)
        assert merged.total == pytest.approx(sum(exact), rel=0, abs=0)

        # the parent absorbed the same aggregates after the pool drained
        absorbed = stream.histograms["sweep.worker_result"]
        assert absorbed.count == len(exact)
        assert absorbed.total == sum(exact)
        # and folded its own per-point view under distinct names
        assert stream.histograms["sweep.point_result"].count == len(exact)


class TestStreamHook:
    def test_disabled_by_default_and_context_managed(self):
        assert active_stream() is None
        with streaming() as stream:
            assert active_stream() is stream
        assert active_stream() is None

    def test_install_uninstall(self):
        stream = install_stream()
        try:
            assert active_stream() is stream
        finally:
            uninstall_stream()
        assert active_stream() is None


class TestStreamingPurity:
    def test_results_bit_for_bit_with_and_without_stream(self):
        dark = ODRIPSController().measure(cycles=2)
        with streaming() as stream:
            lit = ODRIPSController().measure(cycles=2)
        assert lit.average_power_w == dark.average_power_w
        assert lit.drips_residency == dark.drips_residency
        assert lit.drips_power_w == dark.drips_power_w
        # the stream did observe the run
        assert stream.histograms["measure.average_power_w"].count == 1
        assert stream.heartbeats["runner"]["done"] >= 2
        assert stream.labels["experiment"]
        assert stream.labels["fingerprint"]

    def test_macro_run_heartbeats_and_purity(self):
        dark = ODRIPSController().measure_raw(cycles=400, macro=True)
        with streaming() as stream:
            lit = ODRIPSController().measure_raw(cycles=400, macro=True)
        assert lit.average_power_w == dark.average_power_w
        assert lit.residency == dark.residency
        assert lit.wake_events == dark.wake_events
        beat = stream.heartbeats["macro"]
        assert beat["done"] <= beat["total"]
        assert beat["done"] >= 300  # the skip executor advanced the heartbeat
        assert stream.histograms["macro.step_cycles"].count >= 1
        assert stream.histograms["cycle.duration_s"].count >= 1  # exact cycles
