"""Tests for the memory controller: routing, protection, self-refresh."""

import pytest

from repro.errors import MemoryFault
from repro.memory.controller import MemoryController
from repro.memory.dram import DRAMDevice
from repro.memory.region import MemoryRegion
from repro.sgx.cache import MEECache
from repro.sgx.integrity_tree import TreeGeometry
from repro.sgx.mee import MemoryEncryptionEngine
from repro.units import GIB


def make_controller(with_mee=False, region_base=1 << 20, data_size=16 * 1024):
    dram = DRAMDevice("dram", capacity_bytes=1 * GIB)
    controller = MemoryController("mc", dram)
    mee = None
    if with_mee:
        geometry = TreeGeometry.for_data_size(region_base, data_size)
        mee = MemoryEncryptionEngine(dram, geometry, b"k" * 32, MEECache())
        mee.initialize_region()
        controller.attach_mee(mee, MemoryRegion(region_base, geometry.data_blocks * 64))
    return controller, dram, mee


class TestPlainRouting:
    def test_unprotected_roundtrip(self):
        controller, _dram, _ = make_controller()
        controller.write(5000, b"plain")
        data, latency = controller.read(5000, 5)
        assert data == b"plain"
        assert latency > 0

    def test_stats_counted(self):
        controller, _dram, _ = make_controller()
        controller.write(0, b"xy")
        controller.read(0, 2)
        assert controller.stats.writes == 1
        assert controller.stats.reads == 1
        assert controller.stats.bytes_written == 2

    def test_protected_access_without_mee_faults(self):
        controller, _dram, _ = make_controller()
        controller.range_register.program(MemoryRegion(0, 1024))
        with pytest.raises(MemoryFault):
            controller.read(0, 16)


class TestProtectedRouting:
    def test_protected_roundtrip_through_mee(self):
        controller, dram, _mee = make_controller(with_mee=True)
        secret = b"secret-context!!" * 4
        controller.write(1 << 20, secret)
        data, _ = controller.read(1 << 20, len(secret))
        assert data == secret
        assert controller.stats.protected_writes == 1
        assert controller.stats.protected_reads == 1

    def test_protected_data_is_encrypted_at_rest(self):
        controller, dram, _mee = make_controller(with_mee=True)
        secret = b"A" * 64
        controller.write(1 << 20, secret)
        raw = dram._store.read(1 << 20, 64)
        assert raw != secret  # ciphertext, not plaintext

    def test_straddling_access_faults(self):
        controller, _dram, mee = make_controller(with_mee=True)
        region = controller.range_register.region
        with pytest.raises(MemoryFault):
            controller.read(region.base - 8, 16)
        with pytest.raises(MemoryFault):
            controller.write(region.end - 8, bytes(16))

    def test_range_register_locked_after_attach(self):
        controller, _dram, _mee = make_controller(with_mee=True)
        assert controller.range_register.locked


class TestSelfRefresh:
    def test_cke_follows_commands(self):
        controller, dram, _ = make_controller()
        assert bool(controller.cke)
        controller.enter_self_refresh()
        assert not bool(controller.cke)
        assert controller.in_self_refresh
        controller.exit_self_refresh()
        assert bool(controller.cke)

    def test_access_during_self_refresh_faults(self):
        controller, _dram, _ = make_controller()
        controller.enter_self_refresh()
        with pytest.raises(MemoryFault):
            controller.read(0, 8)


class TestPowerCycle:
    def test_access_while_off_faults(self):
        controller, _dram, _ = make_controller()
        controller.power_off()
        with pytest.raises(MemoryFault):
            controller.read(0, 8)

    def test_state_export_import(self):
        controller, _dram, _mee = make_controller(with_mee=True)
        state = controller.export_state()
        fresh_dram = DRAMDevice("dram2", capacity_bytes=1 * GIB)
        fresh = MemoryController("mc2", fresh_dram)
        fresh.import_state(state)
        region = fresh.range_register.region
        assert region is not None
        assert region.base == 1 << 20
        assert fresh.range_register.locked
