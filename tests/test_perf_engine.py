"""Differential tests for the fast-path simulation engine.

Guards the contracts docs/PERF.md documents: the closed-form analyzer
reading matches the raw-sample reference bit-for-bit (correctly rounded
mean) and the exact integral within the instrument tolerance; the
column-oriented trace answers every query like a brute-force scan; the
memoization cache returns identical objects across experiment drivers;
and parallel sweeps equal serial ones.
"""

import math
import random

import pytest

from repro.core import ODRIPSController, TechniqueSet
from repro.core.experiments import fig2_connected_standby, fig6a_techniques, fig6b_core_frequency
from repro.measure.analyzer import PowerAnalyzer
from repro.perf import SimulationCache, fingerprint
from repro.sim.trace import TraceRecorder
from repro.units import seconds_to_ps, us_to_ps


def fig2_sized_trace(cycles: int = 2) -> TraceRecorder:
    """A synthetic platform-power trace shaped like the Fig. 2 workload:
    ~30 s cycles of active burst / entry / DRIPS / exit steps."""
    trace = TraceRecorder()
    t = 0
    for _cycle in range(cycles):
        for duration_s, watts in (
            (0.145, 3.04),    # maintenance burst
            (0.0002, 0.90),   # entry flow
            (29.70, 0.060),   # DRIPS
            (0.0003, 1.20),   # exit flow
        ):
            trace.record(t, "platform", watts)
            t += seconds_to_ps(duration_s)
    trace.record(t, "platform", 3.04)
    return trace


class TestAnalyzerFastPath:
    def test_reading_matches_sample_reference_bit_for_bit(self):
        """measure() equals the correctly rounded mean of sample_window()."""
        trace = fig2_sized_trace()
        analyzer = PowerAnalyzer(trace, sampling_interval_ps=us_to_ps(50))
        end_ps = trace.last("platform").time_ps
        reading = analyzer.measure(0, end_ps)
        samples = analyzer.sample_window(0, end_ps)
        assert reading.samples == len(samples)
        assert reading.min_watts == min(samples)
        assert reading.max_watts == max(samples)
        assert reading.average_watts == math.fsum(samples) / len(samples)

    def test_reading_matches_naive_sum_within_documented_tolerance(self):
        """The pre-change reference summed left-to-right; its accumulated
        rounding differs from the correctly rounded mean by O(n*eps) —
        documented in docs/PERF.md as < 1e-9 relative."""
        trace = fig2_sized_trace()
        analyzer = PowerAnalyzer(trace, sampling_interval_ps=us_to_ps(50))
        end_ps = trace.last("platform").time_ps
        reading = analyzer.measure(0, end_ps)
        samples = analyzer.sample_window(0, end_ps)
        naive = sum(samples) / len(samples)
        assert reading.average_watts == pytest.approx(naive, rel=1e-9)

    def test_fast_path_agrees_with_exact_integral_on_fig2_window(self):
        """Tier-1 guard: the 50 us grid reading converges to the exact
        trace integral on a fig2-sized (30 s) window (Sec. 7 argument)."""
        trace = fig2_sized_trace()
        analyzer = PowerAnalyzer(trace, sampling_interval_ps=us_to_ps(50))
        end_ps = trace.last("platform").time_ps
        reading = analyzer.measure(0, end_ps)
        exact = analyzer.exact_average(0, end_ps)
        assert reading.average_watts == pytest.approx(exact, rel=0.002)

    def test_window_before_first_record(self):
        trace = TraceRecorder()
        trace.record(1000, "platform", 2.0)
        analyzer = PowerAnalyzer(trace, sampling_interval_ps=100)
        reading = analyzer.measure(0, 2000)
        samples = analyzer.sample_window(0, 2000)
        assert reading.samples == len(samples)
        assert reading.min_watts == 0.0  # grid points before the first record
        assert reading.average_watts == math.fsum(samples) / len(samples)

    def test_unaligned_windows_match_reference(self):
        """Windows whose edges do not align with steps or the grid."""
        trace = fig2_sized_trace()
        analyzer = PowerAnalyzer(trace, sampling_interval_ps=us_to_ps(50))
        for start_ps, end_ps in (
            (7, seconds_to_ps(1.0) + 13),
            (seconds_to_ps(0.145), seconds_to_ps(31.0)),
            (seconds_to_ps(0.1), seconds_to_ps(0.2) + 1),
        ):
            reading = analyzer.measure(start_ps, end_ps)
            samples = analyzer.sample_window(start_ps, end_ps)
            assert reading.samples == len(samples)
            assert reading.min_watts == min(samples)
            assert reading.max_watts == max(samples)
            assert reading.average_watts == math.fsum(samples) / len(samples)

    def test_gain_error_matches_reference(self):
        trace = fig2_sized_trace(cycles=1)
        analyzer = PowerAnalyzer(
            trace, sampling_interval_ps=us_to_ps(50), apply_gain_error=True
        )
        end_ps = trace.last("platform").time_ps
        reading = analyzer.measure(0, end_ps)
        samples = analyzer.sample_window(0, end_ps)
        assert reading.average_watts == math.fsum(samples) / len(samples)


class TestTraceColumnStore:
    def random_trace(self):
        rng = random.Random(7)
        trace = TraceRecorder()
        rows = []
        t = 0
        for _ in range(300):
            t += rng.randrange(0, 50)
            channel = rng.choice(["a", "b", "c"])
            value = rng.choice(["x", "y", 1, 2, 3.5])
            trace.record(t, channel, value)
            rows.append((t, channel, value))
        return trace, rows

    def brute_value_at(self, rows, channel, time_ps):
        result = None
        for t, ch, value in rows:
            if ch != channel:
                continue
            if t > time_ps:
                break
            result = value
        return result

    def test_value_at_matches_brute_force(self):
        trace, rows = self.random_trace()
        horizon = rows[-1][0] + 100
        for channel in ("a", "b", "c", "missing"):
            for probe in range(0, horizon, 37):
                assert trace.value_at(channel, probe) == self.brute_value_at(
                    rows, channel, probe
                ), (channel, probe)

    def test_intervals_partition_the_window(self):
        trace, rows = self.random_trace()
        end_ps = rows[-1][0] + 500
        for channel in ("a", "b", "c"):
            intervals = list(trace.intervals(channel, end_ps))
            # contiguous, half-open, ending exactly at end_ps
            for (lo_a, hi_a, _va), (lo_b, _hi_b, _vb) in zip(intervals, intervals[1:]):
                assert hi_a == lo_b
            assert intervals[-1][1] == end_ps
            # each interval reports the step value at its start
            for lo, _hi, value in intervals:
                assert trace.value_at(channel, lo) == value

    def test_intervals_start_hint_only_drops_earlier_steps(self):
        trace, rows = self.random_trace()
        end_ps = rows[-1][0] + 500
        start_ps = rows[len(rows) // 2][0]
        for channel in ("a", "b", "c"):
            full = [
                (max(lo, start_ps), min(hi, end_ps), value)
                for lo, hi, value in trace.intervals(channel, end_ps)
                if min(hi, end_ps) > max(lo, start_ps)
            ]
            hinted = [
                (max(lo, start_ps), min(hi, end_ps), value)
                for lo, hi, value in trace.intervals(channel, end_ps, start_ps=start_ps)
                if min(hi, end_ps) > max(lo, start_ps)
            ]
            assert hinted == full

    def test_dwell_times_sum_to_window(self):
        trace, rows = self.random_trace()
        end_ps = rows[-1][0] + 500
        for channel in ("a", "b", "c"):
            first_ps = min(t for t, ch, _v in rows if ch == channel)
            dwell = trace.dwell_times(channel, end_ps)
            assert sum(dwell.values()) == end_ps - first_ps

    def test_global_sample_order_preserved(self):
        trace, rows = self.random_trace()
        assert [(s.time_ps, s.channel, s.value) for s in trace.samples()] == rows
        assert len(trace) == len(rows)


class TestSimulationCache:
    def test_fingerprint_is_value_based(self):
        from repro.config import skylake_config

        assert fingerprint(skylake_config(), TechniqueSet.odrips()) == fingerprint(
            skylake_config(), TechniqueSet.odrips()
        )
        assert fingerprint(skylake_config(), TechniqueSet.odrips()) != fingerprint(
            skylake_config(), TechniqueSet.baseline()
        )

    def test_fingerprint_distinguishes_measure_arguments(self):
        cache = SimulationCache()
        key_a = cache.key("measure", {"cycles": 1, "core_freq_ghz": None})
        key_b = cache.key("measure", {"cycles": 2, "core_freq_ghz": None})
        assert key_a != key_b

    def test_get_or_run_runs_once(self):
        cache = SimulationCache()
        calls = []

        def runner():
            calls.append(1)
            return "result"

        key = cache.key("unit-test")
        assert cache.get_or_run(key, runner) == "result"
        assert cache.get_or_run(key, runner) == "result"
        assert calls == [1]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert len(cache) == 1

    def test_controller_memoizes_identical_measurements(self):
        cache = SimulationCache()
        controller = ODRIPSController(TechniqueSet.baseline(), cache=cache)
        first = controller.measure(cycles=1)
        second = controller.measure(cycles=1)
        assert second is first  # memoized object, not a re-simulation
        assert cache.stats.hits == 1

    def test_cache_shared_across_experiment_drivers(self):
        """The baseline standby run is reused between fig2 and fig6a."""
        cache = SimulationCache()
        fig2 = fig2_connected_standby(cycles=1, cache=cache)
        misses_after_fig2 = cache.stats.misses
        fig6a = fig6a_techniques(cycles=1, cache=cache)
        assert cache.stats.hits >= 1
        # fig6a added only its four technique runs, not a second baseline
        assert cache.stats.misses == misses_after_fig2 + 4
        assert fig6a.baseline_mw == pytest.approx(fig2.average_power_mw, rel=1e-12)

    def test_cached_and_uncached_results_agree(self):
        cache = SimulationCache()
        cached = ODRIPSController(TechniqueSet.odrips(), cache=cache).measure(cycles=1)
        uncached = ODRIPSController(TechniqueSet.odrips()).measure(cycles=1)
        assert cached.average_power_w == uncached.average_power_w
        assert cached.drips_residency == uncached.drips_residency


class TestParallelSweeps:
    def test_fig6b_parallel_identical_to_serial(self):
        serial = fig6b_core_frequency(cycles=1, frequencies_ghz=(0.8, 1.5))
        parallel = fig6b_core_frequency(
            cycles=1, frequencies_ghz=(0.8, 1.5), parallel=True
        )
        assert [
            (row.parameter, row.average_power_mw, row.delta_vs_reference)
            for row in serial
        ] == [
            (row.parameter, row.average_power_mw, row.delta_vs_reference)
            for row in parallel
        ]
