"""Tests for interrupt coalescing and PCM wear leveling."""

import pytest

from repro.analysis.coalescing import (
    coalesced_wake_rate,
    coalescing_sweep,
    wake_round_trip_energy_j,
    window_for_power_budget,
)
from repro.errors import ConfigError, MemoryFault
from repro.memory.wear_leveling import (
    RotatingContextAllocator,
    years_to_wearout,
)


class TestCoalescedWakeRate:
    def test_no_window_means_one_wake_per_arrival(self):
        assert coalesced_wake_rate(2.0, 0.0) == pytest.approx(2.0)

    def test_window_absorbs_followers(self):
        assert coalesced_wake_rate(1.0, 1.0) == pytest.approx(0.5)
        assert coalesced_wake_rate(1.0, 9.0) == pytest.approx(0.1)

    def test_zero_arrivals_never_wake(self):
        assert coalesced_wake_rate(0.0, 5.0) == 0.0

    def test_monotonic_in_window(self):
        rates = [coalesced_wake_rate(1.0, w) for w in (0.0, 0.1, 1.0, 10.0)]
        assert rates == sorted(rates, reverse=True)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigError):
            coalesced_wake_rate(-1.0, 0.0)
        with pytest.raises(ConfigError):
            coalesced_wake_rate(1.0, -1.0)


class TestCoalescingSweep:
    def test_power_falls_with_window(self):
        points = coalescing_sweep(arrival_rate_hz=1.0)
        powers = [point.average_power_w for point in points]
        assert powers == sorted(powers, reverse=True)

    def test_wide_window_approaches_drips_floor(self):
        points = coalescing_sweep(arrival_rate_hz=1.0)
        assert points[-1].average_power_w < 0.062  # near the 60 mW floor

    def test_chatty_stream_without_coalescing_is_expensive(self):
        """1 wake/s costs ~15 mW extra — a quarter of the whole DRIPS
        budget burned on wake round trips."""
        points = coalescing_sweep(arrival_rate_hz=1.0)
        assert points[0].average_power_w > 0.070

    def test_round_trip_energy_positive(self):
        energy = wake_round_trip_energy_j()
        # dominated by the ~5 ms handling burst at ~3 W (~15 mJ)
        assert 10e-3 < energy < 20e-3

    def test_latency_budget_equals_window(self):
        points = coalescing_sweep(arrival_rate_hz=1.0, windows_s=(0.2,))
        assert points[0].worst_case_latency_s == pytest.approx(0.2)


class TestWindowForBudget:
    def test_budget_below_floor_rejected(self):
        with pytest.raises(ConfigError):
            window_for_power_budget(1.0, power_budget_w=0.010)

    def test_quiet_stream_needs_no_window(self):
        assert window_for_power_budget(0.001, power_budget_w=0.075) == 0.0

    def test_window_meets_budget(self):
        budget = 0.075
        window = window_for_power_budget(1.0, power_budget_w=budget)
        assert window > 0
        rate = coalesced_wake_rate(1.0, window)
        achieved = 0.060 + rate * wake_round_trip_energy_j()
        assert achieved == pytest.approx(budget, rel=1e-6)


class TestWearLeveling:
    def test_round_robin_is_perfectly_level(self):
        allocator = RotatingContextAllocator(10 * 64, 64)
        for _ in range(30):
            allocator.allocate()
        assert allocator.wear_ratio() == pytest.approx(1.0)
        assert allocator.max_slot_writes == 3

    def test_offsets_are_block_aligned_and_disjoint(self):
        allocator = RotatingContextAllocator(64 * (1 << 20), 200 * 1024)
        offsets = {allocator.allocate() for _ in range(allocator.slots)}
        assert len(offsets) == allocator.slots
        assert all(offset % 64 == 0 for offset in offsets)

    def test_endurance_check(self):
        allocator = RotatingContextAllocator(2 * 64, 64)
        for _ in range(6):
            allocator.allocate()
        allocator.check_endurance(3)
        with pytest.raises(MemoryFault):
            allocator.check_endurance(2)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigError):
            RotatingContextAllocator(63, 64)
        with pytest.raises(ConfigError):
            RotatingContextAllocator(1024, 0)


class TestWearout:
    def test_rotation_makes_pcm_effectively_immortal(self):
        """200 KB context rotating through 64 MB at one save per 30 s:
        wearout far beyond the device lifetime."""
        estimate = years_to_wearout(64 * (1 << 20), 200 * 1024)
        assert estimate.slots >= 320
        assert estimate.years > 10_000

    def test_no_rotation_is_still_survivable_but_close(self):
        """A single fixed slot takes all 2880 writes/day: ~95 years at
        1e8 endurance — fine, but one order of magnitude from trouble."""
        estimate = years_to_wearout(200 * 1024, 200 * 1024)
        assert estimate.slots == 1
        assert 50 < estimate.years < 200

    def test_chattier_standby_wears_faster(self):
        slow = years_to_wearout(64 * (1 << 20), 200 * 1024, idle_interval_s=30.0)
        fast = years_to_wearout(64 * (1 << 20), 200 * 1024, idle_interval_s=3.0)
        assert fast.years < slow.years
