"""Tests for activity traces and the trace-driven runner."""

import pytest

from repro.core.techniques import TechniqueSet
from repro.errors import WorkloadError
from repro.workloads.traces import (
    KIND_MAINTENANCE,
    KIND_NETWORK,
    ActivityTrace,
    TraceDrivenRunner,
    TraceEvent,
    chatty_night_trace,
    standard_standby_trace,
)

from _platform import build_platform


class TestTraceFormat:
    def test_events_sorted_on_construction(self):
        trace = ActivityTrace(
            [TraceEvent(20.0, KIND_NETWORK), TraceEvent(10.0, KIND_MAINTENANCE, 0.1)]
        )
        assert [event.time_s for event in trace.events] == [10.0, 20.0]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TraceEvent(-1.0, KIND_NETWORK)
        with pytest.raises(WorkloadError):
            TraceEvent(1.0, "bogus")
        with pytest.raises(WorkloadError):
            TraceEvent(1.0, KIND_MAINTENANCE, 0.0)
        with pytest.raises(WorkloadError):
            ActivityTrace([])

    def test_csv_round_trip(self):
        trace = chatty_night_trace(duration_s=120.0)
        text = trace.to_csv()
        loaded = ActivityTrace.from_csv(text, label=trace.label)
        assert len(loaded.events) == len(trace.events)
        assert loaded.events[0].time_s == pytest.approx(trace.events[0].time_s)
        assert loaded.counts() == trace.counts()

    def test_malformed_csv_rejected(self):
        with pytest.raises(WorkloadError):
            ActivityTrace.from_csv("time_s,kind,param\nnot-a-number,maintenance,0.1\n")

    def test_statistics(self):
        trace = standard_standby_trace(duration_s=120.0, maintenance_interval_s=30.0)
        assert trace.counts()[KIND_MAINTENANCE] >= 3
        assert trace.busy_seconds() == pytest.approx(
            0.145 * trace.counts()[KIND_MAINTENANCE]
        )
        assert trace.expected_idle_fraction() > 0.99


class TestGenerators:
    def test_standard_trace_interval(self):
        trace = standard_standby_trace(duration_s=300.0)
        gaps = [
            b.time_s - a.time_s for a, b in zip(trace.events, trace.events[1:])
        ]
        assert all(29.0 < gap < 31.0 for gap in gaps)

    def test_chatty_trace_adds_network_events(self):
        trace = chatty_night_trace(duration_s=300.0, network_rate_per_minute=4.0)
        counts = trace.counts()
        assert counts.get(KIND_NETWORK, 0) > 5
        assert counts[KIND_MAINTENANCE] >= 9

    def test_generators_deterministic(self):
        a = chatty_night_trace(seed=11).to_csv()
        b = chatty_night_trace(seed=11).to_csv()
        assert a == b

    def test_too_short_horizon_rejected(self):
        with pytest.raises(WorkloadError):
            standard_standby_trace(duration_s=5.0, maintenance_interval_s=30.0)


class TestTraceReplay:
    def test_standard_trace_replays_on_baseline(self):
        platform = build_platform(TechniqueSet.baseline(), small_context=True)
        trace = standard_standby_trace(duration_s=95.0, maintenance_interval_s=30.0)
        runner = TraceDrivenRunner(platform, trace)
        result = runner.run()
        assert result.cycles == len(trace.events)
        assert result.drips_residency > 0.98
        assert 0.05 < result.average_power_w < 0.15

    def test_chatty_trace_wakes_more_often(self):
        quiet_platform = build_platform(TechniqueSet.odrips(), small_context=True)
        quiet = TraceDrivenRunner(
            quiet_platform, standard_standby_trace(duration_s=95.0)
        ).run()
        chatty_platform = build_platform(TechniqueSet.odrips(), small_context=True)
        chatty = TraceDrivenRunner(
            chatty_platform,
            chatty_night_trace(duration_s=95.0, network_rate_per_minute=6.0),
        ).run()
        assert len(chatty.wake_events) > len(quiet.wake_events)
        assert chatty.average_power_w > quiet.average_power_w

    def test_network_events_arrive_as_network_wakes(self):
        platform = build_platform(TechniqueSet.odrips(), small_context=True)
        events = [
            TraceEvent(5.0, KIND_NETWORK),
            TraceEvent(10.0, KIND_MAINTENANCE, 0.05),
        ]
        runner = TraceDrivenRunner(platform, ActivityTrace(events))
        result = runner.run()
        assert any("network" in event for event in result.wake_events)
