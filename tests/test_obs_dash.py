"""Tests for repro.obs.dash and repro.obs.html: the fleet dashboard.

Anomaly detection (robust z + EWMA cross-check), dashboard assembly
from a synthetic run history, the shared HTML helpers the dashboard and
``repro report --html`` both build on, and the report's non-gating
advisory section.
"""

from __future__ import annotations

import pytest

from repro.obs.dash import (
    EWMA_ALPHA,
    ROBUST_Z_CUTOFF,
    build_dashboard,
    detect_anomalies,
    ewma,
    render_dashboard,
    robust_z_scores,
    write_dashboard,
)
from repro.obs.html import Raw, bar_cell, esc, html_table, page, sparkline_svg
from repro.obs.runlog import RunLog
from repro.obs.stream import TelemetryStream


def _record(experiment="fig2", wall_s=1.0, power=0.070, hits=2, misses=1):
    return {
        "experiment": experiment,
        "wall_s": wall_s,
        "metrics": {"average_power_w": power},
        "cache": {"hits": hits, "misses": misses},
        "git_rev": "deadbeefcafe",
    }


def _seed_runlog(tmp_path, records) -> RunLog:
    runlog = RunLog(directory=tmp_path / "runs")
    runlog.append_all(records)
    return runlog


class TestAnomalyDetection:
    def test_robust_z_flat_history_flags_moved_point(self):
        scores = robust_z_scores([1.0, 1.0, 1.0, 1.0, 2.0])
        assert scores[-1] == ROBUST_Z_CUTOFF  # MAD==0 degenerate case
        assert scores[0] == 0.0

    def test_robust_z_empty(self):
        assert robust_z_scores([]) == []

    def test_ewma(self):
        assert ewma([]) is None
        assert ewma([2.0]) == 2.0
        assert ewma([0.0, 1.0], alpha=EWMA_ALPHA) == pytest.approx(EWMA_ALPHA)

    def test_outlier_latest_point_flags(self):
        records = [_record(wall_s=w) for w in (1.0, 1.01, 0.99, 1.0, 10.0)]
        advisories = detect_anomalies(records)
        walls = [a for a in advisories if a["metric"] == "wall_s"]
        assert len(walls) == 1
        assert walls[0]["experiment"] == "fig2"
        assert walls[0]["value"] == 10.0
        assert abs(walls[0]["robust_z"]) >= ROBUST_Z_CUTOFF

    def test_stable_history_stays_quiet(self):
        records = [_record(wall_s=w) for w in (1.0, 1.02, 0.98, 1.01, 1.0)]
        assert detect_anomalies(records) == []

    def test_short_history_stays_quiet(self):
        records = [_record(wall_s=w) for w in (1.0, 1.0, 50.0)]
        assert detect_anomalies(records) == []

    def test_outlier_mid_history_is_not_flagged(self):
        """Only the latest point advises — old outliers are history."""
        records = [_record(wall_s=w) for w in (1.0, 10.0, 1.0, 1.0, 1.0)]
        assert all(a["metric"] != "wall_s" for a in detect_anomalies(records))


class TestHtmlHelpers:
    def test_html_table_escapes_unless_raw(self):
        table = html_table(["<h>"], [["<va&lue>", Raw("<td><b>x</b></td>")]])
        assert "&lt;h&gt;" in table
        assert "&lt;va&amp;lue&gt;" in table
        assert "<b>x</b>" in table

    def test_bar_cell_width(self):
        full = bar_cell(1.0, width=4)
        assert isinstance(full, Raw)
        assert "████" in str(full)
        assert "█" not in str(bar_cell(0.0, width=4))

    def test_sparkline_svg(self):
        cell = sparkline_svg([1.0, 2.0, 3.0], flags=[False, False, True])
        assert "<svg" in str(cell) and "polyline" in str(cell)
        assert "circle" in str(cell)  # flagged point marker
        flat = sparkline_svg([2.0, 2.0])
        assert "<svg" in str(flat)  # flat series renders a midline

    def test_page_shell(self):
        doc = page("T&T", ["<p>x</p>"])
        assert doc.startswith("<!DOCTYPE html>")
        assert "T&amp;T" in doc
        assert "<p>x</p>" in doc
        assert esc("a<b") == "a&lt;b"


class TestDashboard:
    def test_build_joins_runlog_bench_and_stream(self, tmp_path):
        runlog = _seed_runlog(
            tmp_path, [_record(wall_s=1.0), _record(experiment="fig6b", wall_s=2.0)]
        )
        stream = TelemetryStream(heartbeat_dir=tmp_path / "hb")
        stream.histogram("x").observe(1.0)
        stream.heartbeat("runner", done=1, total=2)
        data = build_dashboard(
            runlog=runlog,
            bench_path=tmp_path / "missing.json",
            heartbeat_dir=tmp_path / "hb",
            stream=stream,
        )
        assert len(data["records"]) == 2
        assert data["duration_hist"].count == 2
        assert data["power_hist"].count == 2
        assert data["cache_trend"] == [pytest.approx(2 / 3)] * 2
        assert data["wall_series"] == {"fig2": [1.0], "fig6b": [2.0]}
        assert data["bench_rows"] == []  # missing bench file tolerated
        assert [hb["source"] for hb in data["heartbeats"]] == ["runner"]
        assert data["stream"]["histograms"]["x"]["count"] == 1

    def test_render_dashboard_joins_two_runs(self, tmp_path):
        """The acceptance anchor: dash.html joins >= 2 runlog records."""
        runlog = _seed_runlog(
            tmp_path,
            [_record(wall_s=w) for w in (1.0, 1.01, 0.99, 1.0, 10.0)],
        )
        data = build_dashboard(runlog=runlog, bench_path=tmp_path / "none.json")
        html_text = render_dashboard(data)
        assert "Run history" in html_text
        assert "Run durations" in html_text
        assert "Anomaly advisories" in html_text  # the 10x outlier
        assert "Cache hit-rate trend" in html_text
        assert "Wall-time trajectories" in html_text
        assert html_text.count("<tr>") > 5

    def test_render_empty_dashboard(self, tmp_path):
        data = build_dashboard(
            runlog=RunLog(directory=tmp_path / "empty"),
            bench_path=tmp_path / "none.json",
        )
        assert "No telemetry yet" in render_dashboard(data)

    def test_bench_rows_carry_policy_verdicts(self, tmp_path):
        bench = tmp_path / "BENCH_perf.json"
        bench.write_text(
            '{"benches": {"analyzer_fast_path": {"speedup": 25.0},'
            ' "unknown_bench": {"figure": 1.0}}}'
        )
        data = build_dashboard(
            runlog=RunLog(directory=tmp_path / "empty"), bench_path=bench
        )
        verdicts = {(b, m): v for b, m, _value, v in data["bench_rows"]}
        assert verdicts[("analyzer_fast_path", "speedup")].startswith("ok (floor")
        assert verdicts[("unknown_bench", "figure")] == "advisory"

    def test_causal_rollups_render(self, tmp_path):
        causal = {
            "total_energy_j": 2.0,
            "rollups": [
                {"cause": "timer-wake", "energy_j": 1.5, "residency": 0.75},
                {"cause": "steady-idle", "energy_j": 0.5, "residency": 0.25},
            ],
        }
        data = build_dashboard(
            runlog=RunLog(directory=tmp_path / "empty"),
            bench_path=tmp_path / "none.json",
            causal=causal,
        )
        html_text = render_dashboard(data)
        assert "Per-cause energy" in html_text
        assert "timer-wake" in html_text and "75.0%" in html_text

    def test_write_dashboard(self, tmp_path):
        runlog = _seed_runlog(tmp_path, [_record()])
        data = build_dashboard(runlog=runlog, bench_path=tmp_path / "none.json")
        target = write_dashboard(tmp_path / "out" / "dash.html", data)
        assert target.read_text().startswith("<!DOCTYPE html>")


class TestReportAdvisories:
    def test_report_carries_non_gating_advisories(self, tmp_path):
        from repro.regress.report import build_report, render_html, render_text

        runlog = _seed_runlog(
            tmp_path, [_record(wall_s=w) for w in (1.0, 1.01, 0.99, 1.0, 10.0)]
        )
        report = build_report(runlog=runlog, bench_path=tmp_path / "none.json")
        advisories = [a for a in report["advisories"] if a["metric"] == "wall_s"]
        assert len(advisories) == 1
        # advisory only: the outlier must not flip the verdict machinery
        assert all(f["within"] for f in report["findings"] if f["source"] == "golden")
        text = render_text(report)
        assert "Anomaly advisories" in text and "never a gate" in text
        html_text = render_html(report)
        assert "Anomaly advisories" in html_text

    def test_quiet_history_renders_no_advisory_section(self, tmp_path):
        from repro.regress.report import build_report, render_text

        runlog = _seed_runlog(tmp_path, [_record(), _record()])
        report = build_report(runlog=runlog, bench_path=tmp_path / "none.json")
        assert report["advisories"] == []
        assert "Anomaly advisories" not in render_text(report)
