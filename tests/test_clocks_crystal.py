"""Tests for crystal oscillators and the integer edge grid."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clocks.crystal import CrystalOscillator
from repro.errors import ClockError
from repro.power.domain import PowerDomain
from repro.units import PICOSECONDS_PER_SECOND


class TestEdgeGrid:
    def test_period_of_24mhz(self):
        xtal = CrystalOscillator("x", 24e6)
        assert xtal.period_ps == round(PICOSECONDS_PER_SECOND / 24e6)

    def test_effective_frequency_matches_period(self):
        xtal = CrystalOscillator("x", 32768.0)
        assert xtal.effective_hz == pytest.approx(PICOSECONDS_PER_SECOND / xtal.period_ps)

    def test_ppm_error_shifts_period(self):
        nominal = CrystalOscillator("x", 24e6, ppm_error=0.0)
        fast = CrystalOscillator("x", 24e6, ppm_error=100.0)
        assert fast.period_ps < nominal.period_ps

    def test_next_edge_on_grid(self):
        xtal = CrystalOscillator("x", 1e6)  # 1 us period
        assert xtal.next_edge(0) == 0
        assert xtal.next_edge(1) == 1_000_000
        assert xtal.next_edge(1_000_000) == 1_000_000
        assert xtal.next_edge(1_000_001) == 2_000_000

    def test_previous_edge(self):
        xtal = CrystalOscillator("x", 1e6)
        assert xtal.previous_edge(1_500_000) == 1_000_000
        assert xtal.previous_edge(2_000_000) == 2_000_000

    def test_edges_in_half_open_interval(self):
        xtal = CrystalOscillator("x", 1e6)
        assert xtal.edges_in(0, 3_000_000) == 3  # edges at 0, 1us, 2us
        assert xtal.edges_in(0, 3_000_001) == 4
        assert xtal.edges_in(500, 400) == 0

    def test_edge_number(self):
        xtal = CrystalOscillator("x", 1e6)
        assert xtal.edge_number(0) == 0
        assert xtal.edge_number(2_500_000) == 2

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ClockError):
            CrystalOscillator("x", 0.0)
        with pytest.raises(ClockError):
            CrystalOscillator("x", -5.0)


class TestEnableDisable:
    def test_disabled_crystal_has_no_edges(self):
        xtal = CrystalOscillator("x", 1e6)
        xtal.disable(now_ps=100)
        with pytest.raises(ClockError):
            xtal.next_edge(200)

    def test_reenable_anchors_after_startup(self):
        xtal = CrystalOscillator("x", 1e6, startup_time_ps=5_000_000)
        xtal.disable(0)
        xtal.enable(10_000_000)
        assert xtal.anchor_ps == 15_000_000
        assert xtal.next_edge(10_000_000) == 15_000_000

    def test_query_during_startup_rejected(self):
        xtal = CrystalOscillator("x", 1e6, startup_time_ps=5_000_000)
        xtal.disable(0)
        xtal.enable(0)
        with pytest.raises(ClockError):
            xtal.previous_edge(1_000_000)

    def test_power_component_follows_state(self):
        domain = PowerDomain("d")
        component = domain.new_component("xtal")
        xtal = CrystalOscillator("x", 1e6, power_watts=0.002, power_component=component)
        assert component.power_watts == pytest.approx(0.002)
        xtal.disable(0)
        assert component.power_watts == 0.0
        xtal.enable(100)
        assert component.power_watts == pytest.approx(0.002)

    def test_enable_disable_idempotent(self):
        xtal = CrystalOscillator("x", 1e6)
        xtal.enable(0)  # already enabled: no-op
        assert xtal.enable_count == 0
        xtal.disable(10)
        xtal.disable(20)
        assert xtal.disable_count == 1


class TestEdgeCountProperties:
    @given(
        start=st.integers(min_value=0, max_value=10**10),
        span=st.integers(min_value=0, max_value=10**10),
        freq=st.sampled_from([32768.0, 1e6, 24e6]),
    )
    @settings(max_examples=50, deadline=None)
    def test_edge_count_additivity(self, start, span, freq):
        """edges[a,c) == edges[a,b) + edges[b,c)."""
        xtal = CrystalOscillator("x", freq)
        mid = start + span // 2
        end = start + span
        assert xtal.edges_in(start, end) == xtal.edges_in(start, mid) + xtal.edges_in(mid, end)

    @given(
        start=st.integers(min_value=0, max_value=10**10),
        span=st.integers(min_value=1, max_value=10**10),
        freq=st.sampled_from([32768.0, 24e6]),
        ppm=st.floats(min_value=-200, max_value=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_edge_count_matches_span_frequency(self, start, span, freq, ppm):
        """The count over [start, start+span) is within 1 of span/period."""
        xtal = CrystalOscillator("x", freq, ppm_error=ppm)
        count = xtal.edges_in(start, start + span)
        expected = span / xtal.period_ps
        assert abs(count - expected) <= 1.0
