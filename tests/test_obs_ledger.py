"""Energy-ledger and Chrome-trace-export tests against a real traced run.

The acceptance criteria of the observability PR live here: the ledger's
per-domain totals must sum to the analyzer's average power times the
window within 1e-9 relative, and ``chrome_trace`` must emit a valid
trace-event document with a span for every DRIPS entry-flow step the
configuration actually executes.
"""

import json

import pytest

from repro.errors import MeasurementError
from repro.measure.analyzer import PowerAnalyzer
from repro.obs.export import TRACE_PID, chrome_trace, jsonl_lines, render_summary
from repro.obs.ledger import EnergyLedger
from repro.obs.run import TRACE_CONFIGS, run_traced
from repro.obs.tracer import FLOW_STEP_TRACK, FLOW_TRACK
from repro.sim.trace import TraceRecorder

#: Entry/exit steps the baseline configuration executes (no AON IO gate,
#: so no io-handoff/io-restore; the crystal stays on, so no xtal-restart).
BASELINE_ENTRY_STEPS = {
    "entry:compute-quiesce",
    "entry:llc-flush",
    "entry:context-save",
    "entry:dram-self-refresh",
    "entry:clock-shutdown",
    "entry:drips",
}
BASELINE_EXIT_STEPS = {
    "exit:wake",
    "exit:context-restore",
    "exit:vr-ramp",
    "exit:active",
}


@pytest.fixture(scope="module")
def fig2_session():
    """One traced baseline standby run, shared across this module."""
    return run_traced("fig2", cycles=1)


class TestRunTraced:
    def test_unknown_target_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="unknown trace target"):
            run_traced("fig99")

    def test_targets_cover_paper_configs(self):
        assert {"fig2", "baseline", "odrips", "odrips-mram", "odrips-pcm"} <= set(
            TRACE_CONFIGS
        )

    def test_session_shape(self, fig2_session):
        assert fig2_session.experiment == "fig2"
        assert fig2_session.platform in fig2_session.tracer.platforms
        assert fig2_session.measurement.average_power_w > 0

    def test_no_leaked_spans(self, fig2_session):
        assert fig2_session.tracer.open_spans() == []


class TestLedgerAccuracy:
    def test_domain_totals_match_analyzer(self, fig2_session):
        """Acceptance: sum(domains) == analyzer average x window to 1e-9."""
        ledger = fig2_session.ledger
        analyzer = PowerAnalyzer(fig2_session.platform.trace)
        exact = analyzer.exact_average(ledger.start_ps, ledger.end_ps)
        assert ledger.average_power_w == pytest.approx(exact, rel=1e-9)
        assert ledger.total_energy_j == pytest.approx(
            exact * ledger.window_s, rel=1e-9
        )

    def test_ledger_matches_reported_measurement(self, fig2_session):
        assert fig2_session.ledger.average_power_w == pytest.approx(
            fig2_session.measurement.average_power_w, rel=1e-9
        )

    def test_every_rail_appears_as_domain(self, fig2_session):
        trace = fig2_session.platform.trace
        rails = {
            channel[len("rail:"):]
            for channel in trace.channels()
            if channel.startswith("rail:")
        }
        assert set(fig2_session.ledger.domain_energy_j) == rails
        assert rails  # the platform must expose per-rail channels at all

    def test_domain_average_power(self, fig2_session):
        ledger = fig2_session.ledger
        for domain, joules in ledger.domain_energy_j.items():
            assert ledger.domain_average_power_w(domain) == pytest.approx(
                joules / ledger.window_s
            )
        assert ledger.domain_average_power_w("no-such-domain") == 0.0

    def test_span_attribution_cells_bounded_by_domain_totals(self, fig2_session):
        ledger = fig2_session.ledger
        assert ledger.cells, "flow-step spans should produce attribution cells"
        per_domain_from_cells = {}
        for cell in ledger.cells:
            assert cell.energy_joules >= 0.0
            per_domain_from_cells[cell.domain] = (
                per_domain_from_cells.get(cell.domain, 0.0) + cell.energy_joules
            )
        # Flow steps tile only a sliver of the window, so their attributed
        # energy must never exceed the domain's whole-window total.
        for domain, joules in per_domain_from_cells.items():
            assert joules <= ledger.domain_energy_j[domain] * (1 + 1e-9)

    def test_empty_window_rejected(self):
        with pytest.raises(MeasurementError, match="empty ledger window"):
            EnergyLedger.from_trace(TraceRecorder(), 10, 10)

    def test_trace_without_rails_rejected(self):
        trace = TraceRecorder()
        trace.record(0, "platform", 1.0)
        with pytest.raises(MeasurementError, match="no rail channels"):
            EnergyLedger.from_trace(trace, 0, 100)


class TestChromeTraceExport:
    @pytest.fixture(scope="class")
    def document(self, fig2_session):
        raw = chrome_trace(
            fig2_session.tracer,
            platform=fig2_session.platform,
            end_ps=fig2_session.ledger.end_ps,
        )
        # Round-trip through JSON: the document must serialize cleanly.
        return json.loads(json.dumps(raw))

    def test_top_level_schema(self, document):
        assert set(document) >= {"traceEvents", "displayTimeUnit", "otherData"}
        assert isinstance(document["traceEvents"], list)
        assert document["otherData"]["clock"] == "simulated"

    def test_every_event_well_formed(self, document):
        for event in document["traceEvents"]:
            assert event["pid"] == TRACE_PID
            assert event["ph"] in {"M", "X", "B", "i", "C", "s", "f"}
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] != "M":
                assert event["ts"] >= 0.0

    def test_thread_name_metadata_present(self, document):
        named = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert {FLOW_STEP_TRACK, FLOW_TRACK, "state"} <= named

    def test_span_for_every_executed_entry_step(self, document):
        complete = {
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "X" and event.get("cat") == FLOW_STEP_TRACK
        }
        assert BASELINE_ENTRY_STEPS <= complete
        assert BASELINE_EXIT_STEPS <= complete

    def test_power_counters_exported(self, document):
        counters = {
            event["name"]
            for event in document["traceEvents"]
            if event["ph"] == "C"
        }
        assert "platform" in counters
        assert any(name.startswith("rail:") for name in counters)

    def test_events_sorted_by_timestamp(self, document):
        stamps = [
            event["ts"] for event in document["traceEvents"] if event["ph"] != "M"
        ]
        assert stamps == sorted(stamps)


class TestOtherExporters:
    def test_jsonl_lines_parse_and_cover_record_types(self, fig2_session):
        records = [json.loads(line) for line in jsonl_lines(fig2_session.tracer)]
        kinds = {record["type"] for record in records}
        assert {"span", "instant", "counter", "histogram"} <= kinds
        spans = [r for r in records if r["type"] == "span"]
        assert all(r["duration_ps"] is not None for r in spans)

    def test_render_summary_sections(self, fig2_session):
        text = render_summary(fig2_session.tracer, ledger=fig2_session.ledger)
        assert "Spans" in text
        assert "Counters" in text
        assert "Energy ledger" in text
        assert "TOTAL" in text
        assert "LEAKED" not in text  # the run closed every span

    def test_metrics_only_summary_hides_spans(self, fig2_session):
        text = render_summary(fig2_session.tracer, include_spans=False)
        assert "Counters" in text
        assert "Spans" not in text
