"""Tests for the measurement instruments."""

import pytest

from repro.errors import MeasurementError
from repro.measure.analyzer import PowerAnalyzer
from repro.measure.residency import energy_by_state, residency_report
from repro.sim.trace import TraceRecorder
from repro.units import MS, SECOND, us_to_ps


def standby_like_trace():
    """A synthetic trace resembling one standby cycle."""
    trace = TraceRecorder()
    trace.record(0, "state", "active")
    trace.record(0, "platform", 3.0)
    trace.record(100 * MS, "state", "entry")
    trace.record(100 * MS, "platform", 0.9)
    trace.record(101 * MS, "state", "drips")
    trace.record(101 * MS, "platform", 0.060)
    trace.record(601 * MS, "state", "exit")
    trace.record(601 * MS, "platform", 1.2)
    trace.record(602 * MS, "state", "active")
    trace.record(602 * MS, "platform", 3.0)
    return trace


class TestResidencyReport:
    def test_dwell_and_residency(self):
        trace = standby_like_trace()
        report = residency_report(trace, 0, 700 * MS)
        assert report.dwell_ps["drips"] == 500 * MS
        assert report.residency("drips") == pytest.approx(500 / 700)

    def test_per_state_power(self):
        trace = standby_like_trace()
        report = residency_report(trace, 0, 700 * MS)
        assert report.average_power("drips") == pytest.approx(0.060)
        assert report.average_power("active") == pytest.approx(3.0)

    def test_total_average_is_equation_1(self):
        trace = standby_like_trace()
        report = residency_report(trace, 0, 700 * MS)
        terms = report.equation1_terms()
        assert sum(terms.values()) == pytest.approx(report.total_average_power())

    def test_energy_by_state_window_clipping(self):
        trace = standby_like_trace()
        energies = energy_by_state(trace, 101 * MS, 601 * MS)
        assert set(energies) == {"drips"}
        assert energies["drips"] == pytest.approx(0.060 * 0.5)

    def test_empty_window_rejected(self):
        trace = standby_like_trace()
        with pytest.raises(MeasurementError):
            residency_report(trace, 100, 100)

    def test_unknown_state_power_zero(self):
        trace = standby_like_trace()
        report = residency_report(trace, 0, 700 * MS)
        assert report.average_power("nonexistent") == 0.0


class TestPowerAnalyzer:
    def test_sampled_average_converges_to_exact(self):
        """The 50 us sampler agrees with the exact integral on long windows
        — the instrument-validation argument of Sec. 7."""
        trace = standby_like_trace()
        analyzer = PowerAnalyzer(trace, sampling_interval_ps=us_to_ps(50))
        reading = analyzer.measure(0, 700 * MS)
        exact = analyzer.exact_average(0, 700 * MS)
        assert reading.average_watts == pytest.approx(exact, rel=0.002)

    def test_min_max(self):
        trace = standby_like_trace()
        analyzer = PowerAnalyzer(trace)
        reading = analyzer.measure(0, 700 * MS)
        assert reading.min_watts == pytest.approx(0.060)
        assert reading.max_watts == pytest.approx(3.0)

    def test_gain_error_applied(self):
        trace = standby_like_trace()
        ideal = PowerAnalyzer(trace).measure(0, 700 * MS)
        lossy = PowerAnalyzer(trace, apply_gain_error=True).measure(0, 700 * MS)
        assert lossy.average_watts == pytest.approx(
            ideal.average_watts * PowerAnalyzer.GAIN_ACCURACY
        )

    def test_coarse_sampling_misses_short_phases(self):
        """Sampling slower than a phase can alias it away entirely."""
        trace = TraceRecorder()
        trace.record(0, "platform", 0.0)
        trace.record(10, "platform", 5.0)   # 10 ps blip
        trace.record(20, "platform", 0.0)
        analyzer = PowerAnalyzer(trace, sampling_interval_ps=SECOND)
        reading = analyzer.measure(0, 2 * SECOND)
        assert reading.average_watts == 0.0

    def test_invalid_setup_rejected(self):
        trace = standby_like_trace()
        with pytest.raises(MeasurementError):
            PowerAnalyzer(trace, sampling_interval_ps=0)
        analyzer = PowerAnalyzer(trace)
        with pytest.raises(MeasurementError):
            analyzer.measure(10, 10)

    def test_no_trace_rejected(self):
        analyzer = PowerAnalyzer(TraceRecorder())
        with pytest.raises(MeasurementError):
            analyzer.measure(0, 100)
