"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["fig1b"])
        assert args.experiment == "fig1b"
        assert args.cycles == 2

    def test_cycles_option(self):
        args = build_parser().parse_args(["fig2", "--cycles", "5"])
        assert args.cycles == 5

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestCommands:
    def test_fig1b_prints_breakdown(self, capsys):
        assert main(["fig1b"]) == 0
        out = capsys.readouterr().out
        assert "DRIPS power breakdown" in out
        assert "S/R SRAMs" in out

    def test_calibration_prints_sizing(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "fractional bits f" in out
        assert "21" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Skylake" in out

    def test_latency(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "save" in out and "us" in out

    def test_fig2_with_one_cycle(self, capsys):
        assert main(["fig2", "--cycles", "1"]) == 0
        out = capsys.readouterr().out
        assert "DRIPS residency" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "S/R SRAM power" in out
        assert "idle interval" in out

    def test_temperature(self, capsys):
        assert main(["temperature"]) == 0
        out = capsys.readouterr().out
        assert "30 C" in out
        assert "DRIPS power" in out


class TestExamplesCompile:
    def test_every_example_compiles(self):
        """Examples must at least be syntactically valid and importable
        as sources (running them takes minutes; the APIs they use are
        covered by the unit suite)."""
        import pathlib
        import py_compile

        examples_dir = pathlib.Path(__file__).resolve().parent.parent / "examples"
        examples = sorted(examples_dir.glob("*.py"))
        assert len(examples) >= 8
        for path in examples:
            py_compile.compile(str(path), doraise=True)


class TestTraceCommand:
    def test_trace_parses_with_optional_target(self):
        args = build_parser().parse_args(["trace"])
        assert args.experiment == "trace"
        assert args.target is None
        args = build_parser().parse_args(["trace", "odrips", "--out", "t.json"])
        assert args.target == "odrips"
        assert args.out == "t.json"

    def test_unknown_target_exits_2(self, capsys):
        assert main(["trace", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown trace target" in err
        assert "odrips" in err  # the error lists the valid targets

    def test_trace_fig2_writes_perfetto_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        code = main([
            "trace", "fig2", "--cycles", "1",
            "--out", str(out), "--jsonl", str(jsonl),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["traceEvents"]
        assert any(e["ph"] == "X" for e in document["traceEvents"])
        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(line) for line in lines)
        stdout = capsys.readouterr().out
        assert "Energy ledger" in stdout
        assert "Perfetto" in stdout


class TestObservabilityFlags:
    def test_trace_flag_prints_span_digest_and_uninstalls(self, capsys):
        from repro.obs.tracer import active

        assert main(["fig2", "--cycles", "1", "--trace", "--cache"]) == 0
        out = capsys.readouterr().out
        assert "Spans" in out
        assert "entry:llc-flush" in out
        assert "cache: 0 hit(s), 1 miss(es)" in out
        assert active() is None  # main() must uninstall its tracer

    def test_metrics_flag_prints_counters_only(self, capsys):
        assert main(["fig2", "--cycles", "1", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "Counters" in out
        assert "kernel.events:" in out
        assert "Spans" not in out
