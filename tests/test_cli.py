"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["fig1b"])
        assert args.experiment == "fig1b"
        assert args.cycles == 2

    def test_cycles_option(self):
        args = build_parser().parse_args(["fig2", "--cycles", "5"])
        assert args.cycles == 5

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestCommands:
    def test_fig1b_prints_breakdown(self, capsys):
        assert main(["fig1b"]) == 0
        out = capsys.readouterr().out
        assert "DRIPS power breakdown" in out
        assert "S/R SRAMs" in out

    def test_calibration_prints_sizing(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "fractional bits f" in out
        assert "21" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Skylake" in out

    def test_latency(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "save" in out and "us" in out

    def test_fig2_with_one_cycle(self, capsys):
        assert main(["fig2", "--cycles", "1"]) == 0
        out = capsys.readouterr().out
        assert "DRIPS residency" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "S/R SRAM power" in out
        assert "idle interval" in out

    def test_temperature(self, capsys):
        assert main(["temperature"]) == 0
        out = capsys.readouterr().out
        assert "30 C" in out
        assert "DRIPS power" in out


class TestExamplesCompile:
    def test_every_example_compiles(self):
        """Examples must at least be syntactically valid and importable
        as sources (running them takes minutes; the APIs they use are
        covered by the unit suite)."""
        import pathlib
        import py_compile

        examples_dir = pathlib.Path(__file__).resolve().parent.parent / "examples"
        examples = sorted(examples_dir.glob("*.py"))
        assert len(examples) >= 8
        for path in examples:
            py_compile.compile(str(path), doraise=True)
