"""Tests asserting the flows execute the paper's steps in order.

Sec. 2.2 fixes the entry order: (1) LLC flush, (2) compute VRs off,
(3) context save, (4) DRAM self-refresh, (5) clock shutdown, (6) VR/PMU
gating; the ODRIPS additions slot in at steps (5) and (6).  The flow
trace channel records each step as it starts.
"""

import pytest

from repro.core.techniques import TechniqueSet
from repro.system.flows import FlowController
from repro.system.states import FLOW_CHANNEL

from _platform import build_platform


def run_cycle(techniques):
    platform = build_platform(techniques, small_context=True)
    flows = FlowController(platform)
    platform.boot()
    platform.pmu.schedule_timer_event(platform.next_timer_target(0.05))
    flows.request_drips()
    platform.kernel.run(max_events=100_000)
    return [sample.value for sample in platform.trace.samples(FLOW_CHANNEL)]


class TestEntryOrdering:
    def test_baseline_follows_sec22_order(self):
        steps = run_cycle(TechniqueSet.baseline())
        entry = [step for step in steps if step.startswith("entry:")]
        assert entry == [
            "entry:compute-quiesce",
            "entry:llc-flush",
            "entry:context-save",
            "entry:dram-self-refresh",
            "entry:clock-shutdown",
            "entry:drips",
        ]

    def test_odrips_inserts_io_handoff_after_clock_shutdown(self):
        steps = run_cycle(TechniqueSet.odrips())
        entry = [step for step in steps if step.startswith("entry:")]
        assert entry.index("entry:clock-shutdown") < entry.index("entry:io-handoff")
        assert entry.index("entry:io-handoff") < entry.index("entry:drips")

    def test_context_saved_before_self_refresh(self):
        """The context write needs an accessible DRAM: step (3) must
        precede step (4)."""
        steps = run_cycle(TechniqueSet.odrips())
        entry = [step for step in steps if step.startswith("entry:")]
        assert entry.index("entry:context-save") < entry.index("entry:dram-self-refresh")


class TestExitOrdering:
    def test_baseline_exit_order(self):
        steps = run_cycle(TechniqueSet.baseline())
        exits = [step for step in steps if step.startswith("exit:")]
        assert exits == [
            "exit:wake",
            "exit:context-restore",
            "exit:vr-ramp",
            "exit:active",
        ]

    def test_odrips_exit_restores_clock_before_ios_before_context(self):
        """Sec. 6.2 exit: the fast clock and the engines must come back
        before anything can read the context from DRAM."""
        steps = run_cycle(TechniqueSet.odrips())
        exits = [step for step in steps if step.startswith("exit:")]
        assert exits.index("exit:xtal-restart") < exits.index("exit:io-restore")
        assert exits.index("exit:io-restore") < exits.index("exit:context-restore")
        assert exits[-1] == "exit:active"

    def test_every_cycle_reaches_active(self):
        for techniques in [TechniqueSet.baseline(), TechniqueSet.odrips_pcm()]:
            steps = run_cycle(techniques)
            assert steps[-1] == "exit:active"
