"""Four-channel power measurement, like the paper's N6705B setup.

Sec. 7: "We carry out multiple measurements for different platform
components ... Each measurement uses four analog channels with a
50-microsecond sampling interval."  The power tree traces per-rail
channels, so the simulated analyzer can probe rails independently.
"""

import pytest

from repro.core.techniques import TechniqueSet
from repro.measure.analyzer import PowerAnalyzer
from repro.system.flows import FlowController
from repro.system.states import PlatformState

from _platform import build_platform


@pytest.fixture(scope="module")
def slept_platform():
    """A baseline platform that completed one standby cycle."""
    platform = build_platform(TechniqueSet.baseline())
    flows = FlowController(platform)
    platform.boot()
    platform.pmu.schedule_timer_event(platform.next_timer_target(0.2))
    flows.request_drips()
    platform.kernel.run(max_events=100_000)
    assert platform.state is PlatformState.ACTIVE
    return platform


class TestRailChannels:
    def test_rail_channels_traced(self, slept_platform):
        channels = slept_platform.trace.channels()
        for rail in ("proc_aon", "sram_retention", "chipset_aon", "board", "compute"):
            assert f"rail:{rail}" in channels

    def test_rail_channels_sum_to_platform(self, slept_platform):
        """At any instant, the per-rail probes add up to the battery probe."""
        trace = slept_platform.trace
        now = slept_platform.kernel.now
        rail_sum = sum(
            trace.value_at(channel, now)
            for channel in trace.channels()
            if channel.startswith("rail:")
        )
        assert rail_sum == pytest.approx(trace.value_at("platform", now))

    def test_compute_rail_dominates_active(self, slept_platform):
        """While Active (the platform is Active again after the cycle),
        the compute rail carries most of the ~3 W."""
        trace = slept_platform.trace
        now = slept_platform.kernel.now
        compute = trace.value_at("rail:compute", now)
        total = trace.value_at("platform", now)
        assert compute > 0.5 * total

    def test_retention_rail_measures_sram_slice_in_drips(self, slept_platform):
        """Probing the retention rail alone isolates the S/R SRAM draw —
        exactly how the paper decomposed Fig. 1(b)."""
        trace = slept_platform.trace
        # find a window strictly inside DRIPS
        drips = [
            (lo, hi) for lo, hi, value in trace.intervals("state", slept_platform.kernel.now)
            if value == "drips"
        ]
        assert drips
        lo, hi = drips[0]
        probe = PowerAnalyzer(trace, channel="rail:sram_retention")
        measured = probe.exact_average(lo + (hi - lo) // 4, hi - (hi - lo) // 4)
        budget = slept_platform.config.budget
        expected = budget.sr_sram_w + budget.sram_retention_vr_quiescent_w
        assert measured == pytest.approx(expected, rel=0.05)

    def test_sampled_rail_measurement_converges(self, slept_platform):
        probe = PowerAnalyzer(slept_platform.trace, channel="rail:board")
        end = slept_platform.kernel.now
        reading = probe.measure(0, end)
        assert reading.average_watts == pytest.approx(
            probe.exact_average(0, end), rel=0.01
        )
