"""Tests for AON IO pads and the bank."""

import pytest

from repro.errors import IOError_
from repro.io.pads import AONIOBank
from repro.power.domain import PowerDomain
from repro.power.gates import BoardFETGate


def make_bank():
    gate = BoardFETGate("fet")
    domain = PowerDomain("aon_io", gate)
    bank = AONIOBank(domain)
    bank.add_pad("pml_tx", leakage_watts=0.0007, toggle_watts=0.0002)
    bank.add_pad("thermal", leakage_watts=0.0005, wake_capable=True)
    return gate, domain, bank


class TestPads:
    def test_total_power_sums_pads(self):
        _gate, _domain, bank = make_bank()
        assert bank.total_power_watts() == pytest.approx(0.0012)

    def test_toggling_adds_dynamic_power(self):
        _gate, _domain, bank = make_bank()
        pad = bank.pad("pml_tx")
        pad.start_toggling()
        assert bank.total_power_watts() == pytest.approx(0.0014)
        pad.stop_toggling()
        assert bank.total_power_watts() == pytest.approx(0.0012)

    def test_duplicate_pad_rejected(self):
        _gate, _domain, bank = make_bank()
        with pytest.raises(IOError_):
            bank.add_pad("pml_tx", 0.001)

    def test_unknown_pad_rejected(self):
        _gate, _domain, bank = make_bank()
        with pytest.raises(IOError_):
            bank.pad("nope")

    def test_wake_capability_flag(self):
        _gate, _domain, bank = make_bank()
        assert bank.pad("thermal").wake_capable
        assert not bank.pad("pml_tx").wake_capable


class TestGating:
    def test_gated_bank_pads_unusable(self):
        _gate, domain, bank = make_bank()
        domain.power_off()
        assert bank.gated
        with pytest.raises(IOError_):
            bank.pad("pml_tx").require_usable()

    def test_gated_bank_load_is_fet_leakage(self):
        gate, domain, bank = make_bank()
        domain.power_off()
        assert domain.load_watts() == pytest.approx(
            bank.total_power_watts() * gate.leakage_fraction
        )

    def test_quiesce_stops_all_toggling(self):
        _gate, _domain, bank = make_bank()
        for pad in bank.pads:
            pad.start_toggling()
        bank.quiesce()
        assert all(not pad.toggling for pad in bank.pads)
