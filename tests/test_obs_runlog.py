"""Flight-recorder tests: run records, the append-only store, seams."""

from __future__ import annotations

import json

import pytest

from repro.core.experiments import EXPERIMENTS, fig2_connected_standby
from repro.core.odrips import ODRIPSController
from repro.obs.runlog import (
    RUNLOG_DIR_ENV,
    RUNLOG_SCHEMA,
    RunLog,
    RunRecorder,
    active_recorder,
    git_revision,
    install_recorder,
    recording,
    uninstall_recorder,
)
from repro.perf.cache import SimulationCache


@pytest.fixture(autouse=True)
def _no_leaked_recorder():
    yield
    uninstall_recorder()


class TestGitRevision:
    def test_reads_this_repository(self):
        rev = git_revision()
        assert rev is not None
        assert len(rev) == 40
        assert all(ch in "0123456789abcdef" for ch in rev)

    def test_outside_a_repository(self, tmp_path):
        assert git_revision(tmp_path) is None

    def test_detached_head(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("a" * 40 + "\n")
        assert git_revision(tmp_path) == "a" * 40

    def test_packed_refs(self, tmp_path):
        git = tmp_path / ".git"
        git.mkdir()
        (git / "HEAD").write_text("ref: refs/heads/main\n")
        (git / "packed-refs").write_text(
            "# pack-refs with: peeled fully-peeled sorted\n"
            + "b" * 40 + " refs/heads/main\n"
        )
        assert git_revision(tmp_path) == "b" * 40


class TestRunLogStore:
    def test_append_stamps_and_roundtrips(self, tmp_path):
        store = RunLog(tmp_path / "runs")
        store.append({"schema": RUNLOG_SCHEMA, "experiment": "fig2", "metrics": {}})
        records = store.records()
        assert len(records) == 1
        assert records[0]["experiment"] == "fig2"
        assert records[0]["git_rev"] == git_revision()
        assert records[0]["recorded_at_unix_s"] > 0

    def test_append_only(self, tmp_path):
        store = RunLog(tmp_path / "runs")
        for index in range(3):
            store.append({"experiment": f"e{index}"})
        assert [r["experiment"] for r in store.records()] == ["e0", "e1", "e2"]
        assert len(store) == 3

    def test_corrupt_lines_are_skipped(self, tmp_path):
        store = RunLog(tmp_path / "runs")
        store.append({"experiment": "fig2"})
        with store.path.open("a") as stream:
            stream.write("{torn json\n")
            stream.write("[1, 2]\n")  # parseable but not a record
        store.append({"experiment": "fig6a"})
        assert [r["experiment"] for r in store.records()] == ["fig2", "fig6a"]

    def test_latest_by_experiment(self, tmp_path):
        store = RunLog(tmp_path / "runs")
        store.append({"experiment": "fig2", "wall_s": 1.0})
        store.append({"experiment": "fig2", "wall_s": 2.0})
        store.append({"experiment": "fig6a", "wall_s": 3.0})
        latest = store.latest_by_experiment()
        assert latest["fig2"]["wall_s"] == 2.0
        assert latest["fig6a"]["wall_s"] == 3.0

    def test_missing_store_is_empty(self, tmp_path):
        assert RunLog(tmp_path / "never-created").records() == []

    def test_env_override_selects_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RUNLOG_DIR_ENV, str(tmp_path / "elsewhere"))
        store = RunLog()
        assert store.directory == tmp_path / "elsewhere"

    def test_concurrent_style_interleaving(self, tmp_path):
        # two stores on one file emulate two processes appending
        a = RunLog(tmp_path / "runs")
        b = RunLog(tmp_path / "runs")
        a.append({"experiment": "fig2"})
        b.append({"experiment": "fig6b"})
        a.append({"experiment": "fig6c"})
        assert len(a) == 3


class TestRecorder:
    def test_install_uninstall(self):
        assert active_recorder() is None
        recorder = install_recorder()
        assert active_recorder() is recorder
        uninstall_recorder()
        assert active_recorder() is None

    def test_recording_context(self):
        with recording() as recorder:
            assert active_recorder() is recorder
        assert active_recorder() is None

    def test_experiment_drains_pending_subevents(self):
        recorder = RunRecorder()
        recorder.measurement("Baseline", 0.5, cached=False)
        recorder.sweep(points=3, parallel=False, workers=None, wall_s=1.5,
                       point_walls_s=[0.5, 0.5, 0.5], worker_pids=[1, 1, 1])
        record = recorder.experiment(
            "fig6b", fingerprint="abc", wall_s=2.0, metrics={}, goldens={}
        )
        assert record["measurements"][0]["label"] == "Baseline"
        assert record["sweeps"][0]["points"] == 3
        assert record["sweeps"][0]["worker_pids"] == [1]
        # drained: the next record carries none
        again = recorder.experiment(
            "fig6b", fingerprint="abc", wall_s=2.0, metrics={}, goldens={}
        )
        assert "measurements" not in again
        assert "sweeps" not in again

    def test_finish_flushes_orphans(self):
        recorder = RunRecorder()
        recorder.measurement("ODRIPS", 0.25, cached=True)
        recorder.finish("battery")
        assert len(recorder.records) == 1
        assert recorder.records[0]["experiment"] == "cli:battery"
        assert recorder.records[0]["measurements"][0]["cached"] is True

    def test_finish_without_orphans_records_nothing(self):
        recorder = RunRecorder()
        recorder.finish("fig2")
        assert recorder.records == []


class TestDriverIntegration:
    def test_fig2_run_is_recorded(self):
        with recording() as recorder:
            fig2_connected_standby(cycles=1)
        assert len(recorder.records) == 1
        record = recorder.records[0]
        assert record["schema"] == RUNLOG_SCHEMA
        assert record["experiment"] == "fig2"
        assert len(record["fingerprint"]) == 64
        assert record["wall_s"] > 0
        assert record["goldens"]["drips_power_mw"]["within"] is True
        assert record["context"]["cycles"] == 1
        # the controller seam contributed the measurement
        assert record["measurements"][0]["cached"] is False
        assert json.dumps(record)  # JSON-able end to end

    def test_fingerprint_ignores_cache_handle(self):
        spec = EXPERIMENTS["fig2"]
        plain = spec.config_fingerprint(cycles=1)
        cached = spec.config_fingerprint(cycles=1, cache=SimulationCache())
        different = spec.config_fingerprint(cycles=2)
        assert plain == cached
        assert plain != different

    def test_cache_stats_and_cached_flag(self):
        cache = SimulationCache()
        with recording() as recorder:
            fig2_connected_standby(cycles=1, cache=cache)
            fig2_connected_standby(cycles=1, cache=cache)
        first, second = recorder.records
        assert first["cache"] == {"hits": 0, "misses": 1}
        assert first["measurements"][0]["cached"] is False
        assert second["cache"] == {"hits": 1, "misses": 1}
        assert second["measurements"][0]["cached"] is True

    def test_no_recorder_means_no_records(self):
        result = fig2_connected_standby(cycles=1)
        assert result.average_power_mw > 0
        assert active_recorder() is None

    def test_controller_seam_outside_driver(self):
        with recording() as recorder:
            ODRIPSController().measure(cycles=1)
            recorder.finish("battery")
        assert recorder.records[0]["experiment"] == "cli:battery"
        assert recorder.records[0]["wall_s"] > 0


class TestSweepIntegration:
    def test_serial_sweep_contributes_fanout(self):
        from repro.analysis.sweep import sweep

        with recording() as recorder:
            points = sweep([1.0, 2.0, 3.0], _double)
            recorder.finish("sweep")
        assert points == [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]
        fanout = recorder.records[0]["sweeps"][0]
        assert fanout["points"] == 3
        assert fanout["parallel"] is False
        assert len(fanout["point_walls_s"]) == 3
        assert len(fanout["worker_pids"]) == 1

    def test_parallel_sweep_reports_workers(self):
        from repro.analysis.sweep import sweep

        with recording() as recorder:
            points = sweep([1.0, 2.0, 3.0, 4.0], _double, parallel=True,
                           max_workers=2)
            recorder.finish("sweep")
        assert points == [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0), (4.0, 8.0)]
        fanout = recorder.records[0]["sweeps"][0]
        assert fanout["parallel"] is True
        assert fanout["workers"] == 2
        assert len(fanout["point_walls_s"]) == 4
        assert 1 <= len(fanout["worker_pids"]) <= 2

    def test_sweep_without_recorder_unchanged(self):
        from repro.analysis.sweep import sweep

        assert sweep([2.0], _double) == [(2.0, 4.0)]


def _double(value: float) -> float:
    return value * 2.0
