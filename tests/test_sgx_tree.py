"""Tests for the integrity tree: geometry, verification, tamper detection."""

import pytest

from repro.errors import SecurityError
from repro.memory.dram import DRAMDevice
from repro.sgx.cache import MEECache
from repro.sgx.crypto import MacKey, derive_key, pack_counter
from repro.sgx.integrity_tree import (
    ARITY,
    BLOCK_SIZE,
    IntegrityTree,
    TreeGeometry,
)
from repro.units import GIB

MASTER = b"fuse-master-key-0123456789abcdef"
REGION_BASE = 1 << 20


def make_tree(data_size=8 * 1024, cached=True):
    device = DRAMDevice("dram", capacity_bytes=256 * (1 << 20))
    geometry = TreeGeometry.for_data_size(REGION_BASE, data_size)
    mac = MacKey(derive_key(MASTER, "mac"))
    tree = IntegrityTree(geometry, device, mac, MEECache() if cached else None)
    tree.initialize()
    return device, geometry, tree


class TestGeometry:
    def test_block_count_rounds_up(self):
        geometry = TreeGeometry.for_data_size(0, 100)
        assert geometry.data_blocks == 2  # 100 bytes -> 2 x 64 B blocks

    def test_levels_shrink_by_arity(self):
        geometry = TreeGeometry.for_data_size(0, 3200 * BLOCK_SIZE)
        assert geometry.level_counts == (400, 50, 7, 1)
        assert geometry.levels == 4

    def test_single_block_has_one_level(self):
        geometry = TreeGeometry.for_data_size(0, 64)
        assert geometry.level_counts == (1,)

    def test_layout_is_disjoint_and_ordered(self):
        geometry = TreeGeometry.for_data_size(REGION_BASE, 4096)
        assert geometry.data_offset == REGION_BASE
        assert geometry.versions_offset == REGION_BASE + geometry.data_blocks * BLOCK_SIZE
        assert geometry.leaf_macs_offset > geometry.versions_offset
        assert geometry.level_offset(1) > geometry.leaf_macs_offset

    def test_total_size_accounts_metadata(self):
        geometry = TreeGeometry.for_data_size(0, 4096)
        blocks = geometry.data_blocks
        expected = blocks * 64 + blocks * 16 + sum(geometry.level_counts) * 16
        assert geometry.total_size == expected

    def test_paper_capacity_claim(self):
        """Sec. 6.3: 200 KB context needs <0.3% of a 64 MB SGX region."""
        geometry = TreeGeometry.for_data_size(0, 200 * 1024)
        assert geometry.total_size / (64 * (1 << 20)) < 0.005

    def test_out_of_range_block_rejected(self):
        geometry = TreeGeometry.for_data_size(0, 4096)
        with pytest.raises(SecurityError):
            geometry.block_address(geometry.data_blocks)
        with pytest.raises(SecurityError):
            geometry.node_address(1, 10**6)

    def test_invalid_size_rejected(self):
        with pytest.raises(SecurityError):
            TreeGeometry.for_data_size(0, 0)


class TestVerifyUpdate:
    def test_initialized_zero_block_verifies(self):
        device, geometry, tree = make_tree()
        ciphertext = device._store.read(geometry.block_address(0), BLOCK_SIZE)
        assert tree.verify_block(0, ciphertext) == 0

    def test_update_then_verify(self):
        device, geometry, tree = make_tree()
        ciphertext = bytes(range(64))
        device.write(geometry.block_address(3), ciphertext)
        tree.update_block(3, 1, ciphertext)
        assert tree.verify_block(3, ciphertext) == 1

    def test_root_counter_increments_per_update(self):
        device, geometry, tree = make_tree()
        ciphertext = bytes(64)
        for expected in range(1, 4):
            device.write(geometry.block_address(0), ciphertext)
            tree.update_block(0, expected, ciphertext)
            assert tree.root_counter == expected

    def test_cache_hit_skips_upper_walk(self):
        device, geometry, tree = make_tree()
        ciphertext = device._store.read(geometry.block_address(0), BLOCK_SIZE)
        tree.verify_block(0, ciphertext)
        accesses_after_first = tree.metadata_accesses
        tree.verify_block(0, ciphertext)
        second_cost = tree.metadata_accesses - accesses_after_first
        assert second_cost < accesses_after_first


class TestTamperDetection:
    def test_flipped_ciphertext_detected(self):
        device, geometry, tree = make_tree()
        ciphertext = bytes(64)
        device.write(geometry.block_address(0), ciphertext)
        tree.update_block(0, 1, ciphertext)
        tampered = b"\xff" + ciphertext[1:]
        with pytest.raises(SecurityError, match="data MAC"):
            tree.verify_block(0, tampered)

    def test_tampered_version_detected(self):
        device, geometry, tree = make_tree(cached=False)
        ciphertext = bytes(64)
        device.write(geometry.block_address(0), ciphertext)
        tree.update_block(0, 1, ciphertext)
        device._store.write(geometry.version_address(0), pack_counter(99))
        with pytest.raises(SecurityError):
            tree.verify_block(0, ciphertext)

    def test_tampered_node_mac_detected(self):
        device, geometry, tree = make_tree(cached=False)
        ciphertext = bytes(64)
        device.write(geometry.block_address(0), ciphertext)
        tree.update_block(0, 1, ciphertext)
        node_addr = geometry.node_address(1, 0)
        device._store.write(node_addr + 8, b"\x00" * 8)  # clobber the MAC
        with pytest.raises(SecurityError, match="tree MAC"):
            tree.verify_block(0, ciphertext)

    def test_wholesale_replay_detected_by_root(self):
        """Snapshot-and-restore of the whole region must fail against the
        on-chip root counter — the freshness guarantee of Sec. 6.2."""
        device, geometry, tree = make_tree(cached=False)
        block_addr = geometry.block_address(0)
        old_cipher = bytes(64)
        device.write(block_addr, old_cipher)
        tree.update_block(0, 1, old_cipher)
        # attacker snapshots ALL metadata + data for block 0's path
        snapshot_ranges = [
            (block_addr, BLOCK_SIZE),
            (geometry.version_address(0), 8),
            (geometry.leaf_mac_address(0), 8),
        ]
        for level in range(1, geometry.levels + 1):
            snapshot_ranges.append((geometry.node_address(level, 0), 16))
        snapshot = {addr: device._store.read(addr, size) for addr, size in snapshot_ranges}
        # legitimate new write
        new_cipher = bytes([1]) * 64
        device.write(block_addr, new_cipher)
        tree.update_block(0, 2, new_cipher)
        # attacker restores the old snapshot (internally consistent!)
        for addr, data in snapshot.items():
            device._store.write(addr, data)
        with pytest.raises(SecurityError, match="root counter"):
            tree.verify_block(0, snapshot[block_addr])

    def test_version_rollback_under_valid_group_detected(self):
        device, geometry, tree = make_tree(cached=False)
        ciphertext = bytes(64)
        device.write(geometry.block_address(0), ciphertext)
        tree.update_block(0, 1, ciphertext)
        device.write(geometry.block_address(0), ciphertext)
        tree.update_block(0, 2, ciphertext)
        # roll only the leaf version back to 1: level-1 MAC no longer matches
        device._store.write(geometry.version_address(0), pack_counter(1))
        with pytest.raises(SecurityError):
            tree.verify_block(0, ciphertext)
