"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from _platform import build_platform, small_context_config
from repro.clocks.crystal import CrystalOscillator
from repro.clocks.clock import DerivedClock
from repro.config import PlatformConfig
from repro.core.techniques import TechniqueSet
from repro.power.meter import EnergyMeter
from repro.power.tree import PowerTree
from repro.sim.kernel import Kernel
from repro.sim.trace import TraceRecorder
from repro.system.skylake import SkylakePlatform


@pytest.fixture
def kernel() -> Kernel:
    return Kernel()


@pytest.fixture
def trace() -> TraceRecorder:
    return TraceRecorder()


@pytest.fixture
def meter() -> EnergyMeter:
    return EnergyMeter()


@pytest.fixture
def tree(kernel, meter, trace) -> PowerTree:
    return PowerTree(kernel, meter, trace)


@pytest.fixture
def fast_crystal() -> CrystalOscillator:
    return CrystalOscillator("xtal24", 24e6, ppm_error=10.0)


@pytest.fixture
def slow_crystal() -> CrystalOscillator:
    return CrystalOscillator("rtc", 32768.0, ppm_error=-5.0)


@pytest.fixture
def fast_clock(fast_crystal) -> DerivedClock:
    return DerivedClock("fastclk", fast_crystal)


@pytest.fixture
def slow_clock(slow_crystal) -> DerivedClock:
    return DerivedClock("slowclk", slow_crystal)


@pytest.fixture
def fast_ctx_config() -> PlatformConfig:
    return small_context_config()


@pytest.fixture
def baseline_platform() -> SkylakePlatform:
    return build_platform(TechniqueSet.baseline())
