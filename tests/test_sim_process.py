"""Tests for generator-based processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import Process, WaitSignal
from repro.sim.signals import Signal


class TestDelays:
    def test_sequence_of_delays(self, kernel):
        times = []

        def body():
            times.append(kernel.now)
            yield 100
            times.append(kernel.now)
            yield 250
            times.append(kernel.now)

        process = Process(kernel, body())
        kernel.run()
        assert times == [0, 100, 350]
        assert process.finished

    def test_zero_delay_continues_same_time(self, kernel):
        times = []

        def body():
            yield 0
            times.append(kernel.now)

        Process(kernel, body())
        kernel.run()
        assert times == [0]

    def test_negative_delay_raises(self, kernel):
        def body():
            yield -5

        Process(kernel, body())
        with pytest.raises(SimulationError):
            kernel.run()

    def test_unsupported_yield_raises(self, kernel):
        def body():
            yield "nonsense"

        Process(kernel, body())
        with pytest.raises(SimulationError):
            kernel.run()


class TestSignalWaits:
    def test_wait_for_specific_value(self, kernel):
        signal = Signal("go", initial=0)
        events = []

        def body():
            yield WaitSignal(signal, value=2)
            events.append(kernel.now)

        Process(kernel, body())
        kernel.schedule(100, lambda: signal.set(1))
        kernel.schedule(200, lambda: signal.set(2))
        kernel.run()
        assert events == [200]

    def test_wait_any_change(self, kernel):
        signal = Signal("go", initial=0)
        events = []

        def body():
            yield WaitSignal(signal)
            events.append(signal.value)

        Process(kernel, body())
        kernel.schedule(50, lambda: signal.set(9))
        kernel.run()
        assert events == [9]

    def test_wait_already_satisfied_resumes_immediately(self, kernel):
        signal = Signal("go", initial=7)
        events = []

        def body():
            yield WaitSignal(signal, value=7)
            events.append(kernel.now)

        Process(kernel, body())
        kernel.run()
        assert events == [0]

    def test_abort_stops_process(self, kernel):
        ran = []

        def body():
            yield 100
            ran.append(1)

        process = Process(kernel, body())
        process.abort()
        kernel.run()
        assert ran == []
        assert process.finished

    def test_process_return_value(self, kernel):
        def body():
            yield 10
            return 42

        process = Process(kernel, body())
        kernel.run()
        assert process.result == 42
