"""Unit tests of the C5xx effect/determinism analysis.

Every shipped rule gets a non-vacuity test: a seeded mutation that MUST
fire it (a checker that never fires proves nothing).  The declaration
and propagation mechanics get their own coverage, and the shipped tree
is asserted clean end-to-end in test_check_gate.py / test_check_cli.py.
"""

from __future__ import annotations

import pytest

from repro.check.effects import (
    analyze_effects_sources,
    declared_effect_kinds,
)
from repro.effects import EFFECT_KINDS, declares_effects, declared_effects


def rules_of(report):
    return {diag.rule for diag in report.diagnostics}


def analyze_one(source):
    return analyze_effects_sources({"exp.py": source})


# --- cache-soundness rules (C501-C507) ---------------------------------------


def test_c501_wallclock_read_in_a_driver_fires():
    report = analyze_one(
        "import time\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    return time.time()\n"
    )
    assert "C501" in rules_of(report)


def test_c501_fires_through_a_call_chain_with_the_path_recorded():
    report = analyze_one(
        "import time\n"
        "def leaf():\n"
        "    return time.monotonic()\n"
        "def middle():\n"
        "    return leaf()\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    return middle()\n"
    )
    assert "C501" in rules_of(report)
    (diag,) = [d for d in report.diagnostics if d.rule == "C501"]
    assert "middle -> leaf" in diag.message
    # Reported at the entry's def line, not at the witness.
    assert diag.location.line == 7


def test_c502_global_rng_in_a_cache_runner_fires():
    report = analyze_one(
        "import random\n"
        "def runner():\n"
        "    return random.random()\n"
        "def lookup(cache, key):\n"
        "    return cache.get_or_run(key, runner)\n"
    )
    assert "C502" in rules_of(report)


def test_seeded_rng_instances_are_not_flagged():
    report = analyze_one(
        "import random\n"
        "@experiment_driver('fig')\n"
        "def drv(seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.random()\n"
    )
    assert rules_of(report) == set()


def test_c503_environment_read_fires():
    report = analyze_one(
        "import os\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    return os.getenv('THREADS')\n"
    )
    assert "C503" in rules_of(report)


def test_c504_filesystem_access_fires():
    report = analyze_one(
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    with open('data.txt') as stream:\n"
        "        return stream.read()\n"
    )
    assert "C504" in rules_of(report)


def test_c505_network_access_fires():
    report = analyze_one(
        "from urllib.request import urlopen\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    return urlopen('http://example.com').read()\n"
    )
    assert "C505" in rules_of(report)


def test_c506_module_state_mutation_under_a_driver_fires():
    report = analyze_one(
        "COUNT = 0\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    global COUNT\n"
        "    COUNT = COUNT + 1\n"
        "    return COUNT\n"
    )
    assert "C506" in rules_of(report)


def test_c506_module_container_mutation_fires():
    report = analyze_one(
        "RESULTS = []\n"
        "@experiment_driver('fig')\n"
        "def drv(value):\n"
        "    RESULTS.append(value)\n"
        "    return RESULTS\n"
    )
    assert "C506" in rules_of(report)


def test_c507_identity_dependence_fires():
    report = analyze_one(
        "@experiment_driver('fig')\n"
        "def drv(config):\n"
        "    return id(config)\n"
    )
    assert "C507" in rules_of(report)


# --- parallel-safety rules (C511-C514) ---------------------------------------


def test_c511_worker_rebinding_a_global_fires():
    report = analyze_one(
        "STATE = None\n"
        "def worker(value):\n"
        "    global STATE\n"
        "    STATE = value\n"
        "    return value\n"
        "def run(values):\n"
        "    return sweep(values, worker)\n"
    )
    assert "C511" in rules_of(report)


def test_c512_lambda_worker_fires_at_the_call_site():
    report = analyze_one(
        "def run(values):\n"
        "    return sweep(values, lambda v: v * 2)\n"
    )
    (diag,) = [d for d in report.diagnostics if d.rule == "C512"]
    assert diag.location.line == 2


def test_c512_nested_function_worker_fires():
    report = analyze_one(
        "def run(values):\n"
        "    def point(v):\n"
        "        return v * 2\n"
        "    return sweep(values, point)\n"
    )
    assert "C512" in rules_of(report)


def test_c513_worker_accumulating_into_a_module_container_fires():
    report = analyze_one(
        "RESULTS = []\n"
        "def worker(value):\n"
        "    RESULTS.append(value)\n"
        "    return value\n"
        "def run(values, pool):\n"
        "    return list(pool.map(worker, values))\n"
    )
    assert "C513" in rules_of(report)


def test_c514_worker_drawing_from_the_global_rng_fires():
    report = analyze_one(
        "import random\n"
        "def worker(value):\n"
        "    return value + random.random()\n"
        "def run(values):\n"
        "    return sweep(values, worker)\n"
    )
    assert "C514" in rules_of(report)


def test_partial_wrapped_workers_are_unwrapped():
    report = analyze_one(
        "import time\n"
        "from functools import partial\n"
        "def worker(scale, value):\n"
        "    return time.time() * scale * value\n"
        "def run(values):\n"
        "    return sweep(values, partial(worker, 2.0))\n"
    )
    assert "C501" in rules_of(report)


def test_callable_instance_workers_gate_the_dunder_call():
    report = analyze_one(
        "import os\n"
        "class Timed:\n"
        "    def __call__(self, value):\n"
        "        return value, os.getpid()\n"
        "def run(values, pool):\n"
        "    return list(pool.map(Timed(), values))\n"
    )
    assert "C507" in rules_of(report)


# --- determinism rules (C521+) -----------------------------------------------


def test_c521_set_iteration_escaping_into_a_result_fires():
    report = analyze_one(
        "@experiment_driver('fig')\n"
        "def drv(a, b):\n"
        "    return [x for x in {a, b, 3}]\n"
    )
    assert "C521" in rules_of(report)


def test_sorted_set_iteration_is_clean():
    report = analyze_one(
        "@experiment_driver('fig')\n"
        "def drv(a, b):\n"
        "    return sorted(x for x in {a, b, 3})\n"
    )
    assert rules_of(report) == set()


def test_c522_float_accumulation_over_a_set_fires():
    report = analyze_one(
        "@experiment_driver('fig')\n"
        "def drv(a, b):\n"
        "    return sum({a, b, 0.5})\n"
    )
    assert "C522" in rules_of(report)


# --- the declared-effects boundary -------------------------------------------


def test_declared_kind_is_absorbed_at_the_boundary():
    report = analyze_one(
        "import time\n"
        "@declares_effects('time')\n"
        "def stamp():\n"
        "    return time.time()\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    stamp()\n"
        "    return 1\n"
    )
    assert rules_of(report) == set()


def test_declaration_is_narrow_other_kinds_still_flow():
    report = analyze_one(
        "import time, os\n"
        "@declares_effects('time')\n"
        "def stamp():\n"
        "    os.getenv('HOME')\n"
        "    return time.time()\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    stamp()\n"
        "    return 1\n"
    )
    assert rules_of(report) == {"C503"}


def test_declaration_on_the_entry_itself_absorbs():
    report = analyze_one(
        "import time\n"
        "@declares_effects('time')\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    return time.time()\n"
    )
    assert rules_of(report) == set()


def test_pragma_on_the_entry_def_line_suppresses():
    report = analyze_one(
        "import time\n"
        "@experiment_driver('fig')\n"
        "def drv():  # lint: allow(C501)\n"
        "    return time.time()\n"
    )
    assert rules_of(report) == set()


def test_declared_effect_kinds_reads_only_string_literals():
    import ast

    tree = ast.parse(
        "@declares_effects('time', 'env')\n"
        "@declares_effects(variable)\n"
        "def fn():\n"
        "    pass\n"
    )
    assert declared_effect_kinds(tree.body[0]) == ("time", "env")


# --- the runtime decorator ---------------------------------------------------


def test_runtime_decorator_attaches_and_validates():
    @declares_effects("time", "identity")
    def stamp():
        return 0

    assert declared_effects(stamp) == ("time", "identity")
    assert declared_effects(len) == ()
    with pytest.raises(ValueError):
        declares_effects("wallclock")
    with pytest.raises(ValueError):
        declares_effects()


def test_every_effect_kind_is_declarable():
    for kind in EFFECT_KINDS:
        @declares_effects(kind)
        def fn():
            return None
        assert declared_effects(fn) == (kind,)


# --- scoping and resolution --------------------------------------------------


def test_calls_through_parameters_do_not_resolve_by_name():
    # ``experiment`` is a parameter of run(); the same-named module-level
    # function elsewhere must not leak its effects into run's callers.
    report = analyze_one(
        "import time\n"
        "def experiment():\n"
        "    return time.time()\n"
        "def run(experiment):\n"
        "    return experiment()\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    return run(None)\n"
    )
    assert rules_of(report) == set()


def test_worker_parameters_are_not_resolved_by_name():
    report = analyze_one(
        "import time\n"
        "def experiment():\n"
        "    return time.time()\n"
        "def run(values, experiment):\n"
        "    return sweep(values, experiment)\n"
    )
    assert rules_of(report) == set()


def test_cache_runner_via_lambda_body_is_gated():
    report = analyze_one(
        "import time\n"
        "def simulate(config):\n"
        "    return time.time()\n"
        "def lookup(cache, key, config):\n"
        "    return cache.get_or_run(key, lambda: simulate(config))\n"
    )
    assert "C501" in rules_of(report)


def test_summary_shape_lists_entries_and_declarations():
    report = analyze_one(
        "import time\n"
        "@declares_effects('time')\n"
        "def stamp():\n"
        "    return time.time()\n"
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    stamp()\n"
        "    return 1\n"
    )
    summary = report.summary
    assert summary["converged"] is True
    (entry,) = summary["entry_points"]
    assert entry["qualname"] == "drv"
    assert entry["kind"] == "driver"
    assert entry["clean"] is True
    (declared,) = summary["declared"]
    assert declared["qualname"] == "stamp"
    assert declared["effects"] == ["time"]


def test_effects_propagate_across_modules():
    report = analyze_effects_sources(
        {
            "instrument.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "driver.py": (
                "@experiment_driver('fig')\n"
                "def drv():\n"
                "    return stamp()\n"
            ),
        }
    )
    assert "C501" in rules_of(report)
