"""Tests for the SRAM device model."""

import pytest

from repro.errors import MemoryFault
from repro.memory.sram import SRAMDevice, SRAMState
from repro.power.domain import PowerDomain


def make_sram(capacity=1024, leak_per_byte=1e-8, domain=None):
    component = None
    if domain is not None:
        component = domain.new_component("sram")
    return SRAMDevice("sram", capacity, leak_per_byte, power_component=component)


class TestStates:
    def test_operational_allows_access(self):
        sram = make_sram()
        sram.write(0, b"abc")
        assert sram.read(0, 3) == b"abc"

    def test_retention_blocks_access_but_keeps_data(self):
        sram = make_sram()
        sram.write(0, b"abc")
        sram.enter_retention()
        with pytest.raises(MemoryFault):
            sram.read(0, 3)
        sram.exit_retention()
        assert sram.read(0, 3) == b"abc"

    def test_power_off_loses_data(self):
        sram = make_sram()
        sram.write(0, b"abc")
        sram.power_off()
        sram.power_on()
        assert sram.read(0, 3) == b"\x00\x00\x00"

    def test_retain_powered_off_array_rejected(self):
        sram = make_sram()
        sram.power_off()
        with pytest.raises(MemoryFault):
            sram.enter_retention()
        with pytest.raises(MemoryFault):
            sram.exit_retention()

    def test_state_transitions(self):
        sram = make_sram()
        assert sram.state is SRAMState.OPERATIONAL
        sram.enter_retention()
        assert sram.state is SRAMState.RETENTION
        sram.power_off()
        assert sram.state is SRAMState.OFF


class TestPower:
    def test_retention_power_scales_with_capacity(self):
        small = make_sram(capacity=1024)
        large = make_sram(capacity=4096)
        assert large.retention_power_watts() == pytest.approx(
            4 * small.retention_power_watts()
        )

    def test_power_component_tracks_state(self):
        domain = PowerDomain("d")
        sram = make_sram(domain=domain)
        component = domain.components[0]
        operational = component.power_watts
        sram.enter_retention()
        retention = component.power_watts
        sram.power_off()
        off = component.power_watts
        assert operational > retention > off == 0.0

    def test_operational_leakage_factor(self):
        sram = make_sram()
        domain = PowerDomain("d")
        sram2 = make_sram(domain=domain)
        component = domain.components[0]
        assert component.power_watts == pytest.approx(
            sram2.retention_power_watts() * sram2.operational_leakage_factor
        )

    def test_access_energy_accumulates(self):
        sram = make_sram()
        before = sram.access_energy_joules
        sram.write(0, bytes(100))
        assert sram.access_energy_joules > before

    def test_chipset_process_leaks_5x_less(self):
        """Sec. 3 Observation 3: processor SRAM leaks ~5x chipset SRAM."""
        processor_leak = 1e-8
        chipset_leak = SRAMDevice.chipset_equivalent_leakage(processor_leak)
        assert processor_leak / chipset_leak == pytest.approx(5.0)

    def test_negative_leakage_rejected(self):
        with pytest.raises(MemoryFault):
            make_sram(leak_per_byte=-1.0)
