"""Tests for the chipset dual timer and the fast/slow handoff of Fig. 3."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clocks.clock import DerivedClock
from repro.clocks.crystal import CrystalOscillator
from repro.errors import TimerError
from repro.timers.calibration import StepCalibrator
from repro.timers.dual_timer import ChipsetDualTimer, TimerMode
from repro.units import SECOND


def make_timer(fast_ppm=10.0, slow_ppm=-5.0, calibrate=True):
    fast = CrystalOscillator("xtal24", 24e6, ppm_error=fast_ppm)
    slow = CrystalOscillator("rtc", 32768.0, ppm_error=slow_ppm)
    calibrator = StepCalibrator.for_precision(fast, slow)
    timer = ChipsetDualTimer(
        "dt",
        DerivedClock("fc", fast),
        DerivedClock("sc", slow),
        frac_bits=calibrator.frac_bits,
    )
    if calibrate:
        timer.set_step(calibrator.run(0).step)
    return fast, slow, timer


class TestModes:
    def test_starts_idle(self):
        _f, _s, timer = make_timer()
        assert timer.mode is TimerMode.IDLE
        with pytest.raises(TimerError):
            timer.read(0)
        with pytest.raises(TimerError):
            timer.time_of_count(1, 0)

    def test_load_fast_enters_fast_mode(self):
        fast, _s, timer = make_timer()
        timer.load_fast(10 * fast.period_ps, 1000)
        assert timer.mode is TimerMode.FAST
        assert timer.read(10 * fast.period_ps) == 1000

    def test_fast_mode_counts_at_fast_rate(self):
        fast, _s, timer = make_timer()
        timer.load_fast(0, 0)
        assert timer.read(100 * fast.period_ps) == 100

    def test_compensation_added_on_load(self):
        fast, _s, timer = make_timer()
        timer.load_fast(0, 1000, compensation_cycles=16)
        assert timer.read(0) == 1016

    def test_switch_to_slow_requires_fast_mode(self):
        _f, _s, timer = make_timer()
        with pytest.raises(TimerError):
            timer.switch_to_slow(0)

    def test_switch_to_slow_requires_calibration(self):
        fast, _s, timer = make_timer(calibrate=False)
        timer.load_fast(0, 0)
        assert not timer.calibrated
        with pytest.raises(TimerError):
            timer.switch_to_slow(timer.next_slow_edge(0))

    def test_switch_to_fast_requires_slow_mode(self):
        fast, _s, timer = make_timer()
        timer.load_fast(0, 0)
        with pytest.raises(TimerError):
            timer.switch_to_fast(0)

    def test_step_frac_bits_must_match(self):
        from repro.timers.fixedpoint import FixedPoint

        _f, _s, timer = make_timer(calibrate=False)
        with pytest.raises(TimerError):
            timer.set_step(FixedPoint.from_int(700, frac_bits=4))


class TestHandoff:
    def test_round_trip_preserves_count_exactly_at_edges(self):
        fast, slow, timer = make_timer()
        timer.load_fast(0, 1_000_000)
        edge = timer.next_slow_edge(0)
        value_at_edge = timer.read(edge)
        timer.switch_to_slow(edge)
        assert timer.mode is TimerMode.SLOW
        # ... deep sleep for 5 seconds ...
        later = edge + 5 * SECOND
        back_edge = slow.next_edge(later)
        timer.switch_to_fast(back_edge)
        got = timer.read(back_edge)
        truth = value_at_edge + fast.edges_in(edge + 1, back_edge + 1)
        # quantization at the two handoff edges is at most a few fast counts
        assert abs(got - truth) <= 2

    def test_slow_mode_read_monotonic(self):
        _f, slow, timer = make_timer()
        timer.load_fast(0, 0)
        edge = timer.next_slow_edge(0)
        timer.switch_to_slow(edge)
        previous = -1
        for k in range(20):
            value = timer.read(edge + k * slow.period_ps)
            assert value >= previous
            previous = value

    def test_slow_mode_rate_approximates_fast_rate(self):
        fast, _s, timer = make_timer()
        timer.load_fast(0, 0)
        edge = timer.next_slow_edge(0)
        start = timer.read(edge)
        timer.switch_to_slow(edge)
        one_second_later = edge + SECOND
        counted = timer.read(one_second_later) - start
        assert counted == pytest.approx(fast.effective_hz, rel=1e-4)

    def test_handoff_counter(self):
        _f, slow, timer = make_timer()
        timer.load_fast(0, 0)
        edge = timer.next_slow_edge(0)
        timer.switch_to_slow(edge)
        timer.switch_to_fast(slow.next_edge(edge + 1))
        assert timer.handoff_count == 2

    def test_value_for_processor_includes_compensation(self):
        fast, _s, timer = make_timer()
        timer.load_fast(0, 100)
        assert timer.value_for_processor(0, compensation_cycles=16) == 116


class TestDeadlines:
    def test_fast_mode_deadline(self):
        fast, _s, timer = make_timer()
        timer.load_fast(0, 0)
        when = timer.time_of_count(240, now_ps=0)
        assert timer.read(when) >= 240
        assert timer.read(when - fast.period_ps) < 240

    def test_slow_mode_deadline_lands_on_slow_edge(self):
        fast, slow, timer = make_timer()
        timer.load_fast(0, 0)
        edge = timer.next_slow_edge(0)
        timer.switch_to_slow(edge)
        target = timer.read(edge) + 24_000_000  # ~1 s of fast counts
        when = timer.time_of_count(target, now_ps=edge)
        assert (when - edge) % slow.period_ps == 0
        assert timer.read(when) >= target
        assert timer.read(when - slow.period_ps) < target

    def test_deadline_already_met_returns_now(self):
        _f, _s, timer = make_timer()
        timer.load_fast(0, 500)
        assert timer.time_of_count(100, now_ps=12345) == 12345


class TestWraparound:
    def test_fast_timer_wraps_at_64_bits(self):
        fast, _s, timer = make_timer()
        timer.load_fast(0, (1 << 64) - 2)
        assert timer.read(3 * fast.period_ps) == 1  # -2 -> -1 -> 0 -> 1

    def test_slow_timer_raw_wraps_at_64_plus_f_bits(self):
        fast, slow, timer = make_timer()
        timer.load_fast(0, (1 << 64) - 1)
        edge = timer.next_slow_edge(0)
        timer.switch_to_slow(edge)
        # after one slow cycle the count passed the 64-bit boundary
        value = timer.read(edge + slow.period_ps)
        assert 0 <= value < 1 << 64
        assert value < 100_000  # wrapped into small positive counts

    def test_handoff_preserves_count_across_wrap(self):
        fast, slow, timer = make_timer()
        start = (1 << 64) - 24_000_000  # one simulated second before wrap
        timer.load_fast(0, start)
        edge = timer.next_slow_edge(0)
        value_at_edge = timer.read(edge)
        timer.switch_to_slow(edge)
        back_edge = slow.next_edge(edge + 3 * SECOND)
        timer.switch_to_fast(back_edge)
        got = timer.read(back_edge)
        truth = (value_at_edge + fast.edges_in(edge + 1, back_edge + 1)) % (1 << 64)
        assert abs(got - truth) <= 2


class TestDriftProperty:
    @given(
        fast_ppm=st.floats(min_value=-100, max_value=100),
        slow_ppm=st.floats(min_value=-100, max_value=100),
        sleep_s=st.integers(min_value=1, max_value=600),
    )
    @settings(max_examples=25, deadline=None)
    def test_handoff_drift_within_paper_bound(self, fast_ppm, slow_ppm, sleep_s):
        """Sec. 4.1.3: with m=10/f=21 the counting drift stays ~1 ppb.

        We allow the quantization of the two handoff edges (a few counts)
        on top of the ppb-scale accumulation bound.
        """
        fast, slow, timer = make_timer(fast_ppm, slow_ppm)
        timer.load_fast(0, 0)
        edge = timer.next_slow_edge(0)
        value_at_edge = timer.read(edge)
        timer.switch_to_slow(edge)
        back_edge = slow.next_edge(edge + sleep_s * SECOND)
        timer.switch_to_fast(back_edge)
        got = timer.read(back_edge)
        truth = value_at_edge + fast.edges_in(edge + 1, back_edge + 1)
        elapsed_fast_counts = truth - value_at_edge
        drift = abs(got - truth)
        # 1 ppb accumulation + 3 counts of edge quantization
        assert drift <= max(3.0, 2e-9 * elapsed_fast_counts + 3)
