"""Source-checker tests: snippet in, expected S4xx diagnostics out."""

from __future__ import annotations

import textwrap

from repro.lint.source import iter_python_files, lint_file, lint_source_text


def check(snippet: str):
    return lint_source_text(textwrap.dedent(snippet), filename="snippet.py")


def rule_ids(diagnostics):
    return sorted(d.rule for d in diagnostics)


class TestS401Wallclock:
    def test_time_time(self):
        diags = check("""
            import time
            start = time.time()
        """)
        assert rule_ids(diags) == ["S401"]
        assert diags[0].location.line == 3

    def test_aliased_import(self):
        diags = check("""
            import time as clock
            t = clock.monotonic()
        """)
        assert rule_ids(diags) == ["S401"]

    def test_from_import(self):
        diags = check("""
            from time import time
            t = time()
        """)
        assert rule_ids(diags) == ["S401"]

    def test_datetime_now(self):
        diags = check("""
            import datetime
            stamp = datetime.now()
        """)
        assert rule_ids(diags) == ["S401"]

    def test_kernel_now_is_fine(self):
        assert check("now = kernel.now\n") == []

    def test_unrelated_time_attribute(self):
        # someone else's .time() on a non-time module is not flagged
        assert check("""
            import numpy
            t = numpy.time()
        """) == []


class TestS402FloatIntoPs:
    def test_float_literal_assign(self):
        diags = check("delay_ps = 1.5\n")
        assert rule_ids(diags) == ["S402"]

    def test_true_division_assign(self):
        diags = check("period_ps = total / count\n")
        assert rule_ids(diags) == ["S402"]

    def test_augmented_assign(self):
        diags = check("t_ps += dt / 2\n")
        assert rule_ids(diags) == ["S402"]

    def test_keyword_argument(self):
        diags = check("kernel.schedule(time_ps=seconds * 1e12)\n")
        assert rule_ids(diags) == ["S402"]

    def test_round_sanitizes(self):
        assert check("delay_ps = round(total / count)\n") == []

    def test_int_sanitizes_keyword(self):
        assert check("kernel.schedule(time_ps=int(seconds * 1e12))\n") == []

    def test_floor_division_is_fine(self):
        assert check("period_ps = total // count\n") == []

    def test_non_ps_target_is_fine(self):
        assert check("ratio = a / b\n") == []


class TestS403FloatEqPower:
    def test_eq_on_watts(self):
        diags = check("""
            if load_watts == 0:
                pass
        """)
        assert rule_ids(diags) == ["S403"]

    def test_noteq_on_attribute(self):
        diags = check("""
            if self.battery_wh != other.battery_wh:
                pass
        """)
        assert rule_ids(diags) == ["S403"]

    def test_inequality_is_fine(self):
        assert check("ok = load_watts <= 0\n") == []

    def test_non_power_name_is_fine(self):
        assert check("ok = count == 0\n") == []


class TestS404MutableDefault:
    def test_list_literal_default(self):
        diags = check("""
            def f(items=[]):
                return items
        """)
        assert rule_ids(diags) == ["S404"]

    def test_dict_call_default(self):
        diags = check("""
            def f(*, options=dict()):
                return options
        """)
        assert rule_ids(diags) == ["S404"]

    def test_none_default_is_fine(self):
        assert check("""
            def f(items=None):
                return items or []
        """) == []


class TestS405UnitSuffix:
    def test_millisecond_parameter(self):
        diags = check("""
            def wait(timeout_ms):
                pass
        """)
        assert rule_ids(diags) == ["S405"]
        assert diags[0].severity.value == "warning"
        assert "_ps" in (diags[0].hint or "")

    def test_milliwatt_parameter(self):
        diags = check("""
            def budget(limit_mw):
                pass
        """)
        assert rule_ids(diags) == ["S405"]

    def test_private_function_exempt(self):
        assert check("""
            def _wait(timeout_ms):
                pass
        """) == []

    def test_canonical_suffixes_are_fine(self):
        assert check("""
            def run(duration_ps, power_watts, budget_joules):
                pass
        """) == []


class TestS406PsAnnotation:
    def test_ps_param_annotated_float(self):
        diags = check("""
            def schedule(time_ps: float):
                pass
        """)
        assert rule_ids(diags) == ["S406"]

    def test_watts_param_annotated_int(self):
        diags = check("""
            def draw(load_watts: int):
                pass
        """)
        assert rule_ids(diags) == ["S406"]

    def test_ps_function_returning_float(self):
        diags = check("""
            def next_edge_ps(t) -> float:
                return t
        """)
        assert rule_ids(diags) == ["S406"]

    def test_correct_annotations_are_fine(self):
        assert check("""
            def schedule(time_ps: int, load_watts: float) -> int:
                return time_ps
        """) == []


class TestS400SyntaxError:
    def test_broken_module_reports_not_raises(self):
        diags = check("def broken(:\n")
        assert rule_ids(diags) == ["S400"]
        assert diags[0].location.file == "snippet.py"


class TestFileWalking:
    def test_lint_file_and_skip_pycache(self, tmp_path):
        (tmp_path / "mod.py").write_text("delay_ps = 1.5\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "mod.cpython-311.py").write_text("delay_ps = 1.5\n")
        files = list(iter_python_files([tmp_path]))
        assert files == [tmp_path / "mod.py"]
        diags = lint_file(files[0])
        assert rule_ids(diags) == ["S402"]
        assert diags[0].location.file == str(tmp_path / "mod.py")

    def test_diagnostics_sorted_by_line(self):
        diags = check("""
            import time

            def f(items=[]):
                t = time.time()
                return items
        """)
        assert [d.rule for d in diags] == ["S404", "S401"]
        lines = [d.location.line for d in diags]
        assert lines == sorted(lines)


class TestAllowPragma:
    def test_pragma_suppresses_named_rule(self):
        assert check("""
            import time
            t = time.perf_counter()  # lint: allow(S401) host profiler
        """) == []

    def test_pragma_is_per_line(self):
        diags = check("""
            import time
            t0 = time.perf_counter()  # lint: allow(S401)
            t1 = time.perf_counter()
        """)
        assert rule_ids(diags) == ["S401"]
        assert diags[0].location.line == 4

    def test_pragma_names_exact_rule(self):
        # allowing a different rule does not suppress S401
        diags = check("""
            import time
            t = time.time()  # lint: allow(S402)
        """)
        assert rule_ids(diags) == ["S401"]

    def test_pragma_multiple_rules(self):
        diags = check("""
            import time

            def f(items=[], t=time.time()):  # lint: allow(S401, S404)
                return items
        """)
        assert diags == []

    def test_unrelated_finding_on_same_line_still_fires(self):
        diags = check("""
            import time

            def f(items=[], t=time.time()):  # lint: allow(S404)
                return items
        """)
        assert rule_ids(diags) == ["S401"]


class TestS408ExactHistogramHotPath:
    HOT = "src/repro/sim/macro.py"

    def hot_check(self, snippet: str, filename: str = HOT):
        return lint_source_text(textwrap.dedent(snippet), filename=filename)

    def test_exact_histogram_in_hot_path_fires(self):
        diags = self.hot_check("""
            def step(obs):
                obs.metrics.histogram("macro.step_cycles").observe(1)
        """)
        assert rule_ids(diags) == ["S408"]
        assert "bounded=True" in diags[0].hint

    def test_bounded_true_is_quiet(self):
        assert self.hot_check("""
            def step(obs):
                obs.metrics.histogram("macro.step_cycles", bounded=True).observe(1)
        """) == []

    def test_bounded_false_fires(self):
        diags = self.hot_check("""
            def step(obs):
                obs.metrics.histogram("x", bounded=False)
        """)
        assert rule_ids(diags) == ["S408"]

    def test_outside_hot_paths_is_quiet(self):
        assert self.hot_check("""
            def step(obs):
                obs.metrics.histogram("x").observe(1)
        """, filename="src/repro/obs/export.py") == []

    def test_telemetry_stream_receiver_is_exempt(self):
        # TelemetryStream.histogram() is always bounded
        assert self.hot_check("""
            def step(stream):
                stream.histogram("macro.step_cycles").observe(1)
        """) == []

    def test_every_hot_path_file_is_watched(self):
        for suffix in (
            "system/flows.py", "sim/macro.py",
            "analysis/sweep.py", "workloads/standby.py",
        ):
            diags = self.hot_check("""
                def step(obs):
                    obs.metrics.histogram("x")
            """, filename=f"src/repro/{suffix}")
            assert rule_ids(diags) == ["S408"], suffix

    def test_pragma_suppresses(self):
        assert self.hot_check("""
            def step(obs):
                obs.metrics.histogram("x")  # lint: allow(S408)
        """) == []
