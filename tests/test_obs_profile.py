"""Host-phase profiler tests: spans, nesting, stats, the opt-in seam."""

from __future__ import annotations

import pytest

from repro.core.experiments import fig2_connected_standby
from repro.obs.profile import (
    PHASES,
    PhaseProfiler,
    active_profiler,
    host_phase,
    install_profiler,
    profiled,
    uninstall_profiler,
)


@pytest.fixture(autouse=True)
def _no_leaked_profiler():
    yield
    uninstall_profiler()


class TestPhaseProfiler:
    def test_single_phase_span(self):
        profiler = PhaseProfiler()
        with profiler.phase("build") as span:
            pass
        assert span.end_s is not None
        assert span.wall_s >= 0.0
        assert span.depth == 0
        assert profiler.closed_spans() == [span]

    def test_nesting_and_self_time(self):
        profiler = PhaseProfiler()
        with profiler.phase("simulate") as outer:
            with profiler.phase("measure") as inner:
                pass
        assert inner.depth == 1
        assert outer.children_s == inner.wall_s
        assert outer.self_s == pytest.approx(outer.wall_s - inner.wall_s)

    def test_stats_aggregate_and_order(self):
        profiler = PhaseProfiler()
        with profiler.phase("analyze"):
            with profiler.phase("build"):
                pass
            with profiler.phase("build"):
                pass
        stats = profiler.stats()
        assert list(stats) == ["build", "analyze"]  # known-phase order
        assert stats["build"].count == 2
        assert stats["analyze"].count == 1

    def test_custom_phase_names_append(self):
        profiler = PhaseProfiler()
        with profiler.phase("warmup"):
            pass
        assert list(profiler.stats()) == ["warmup"]

    def test_total_wall_counts_top_level_only(self):
        profiler = PhaseProfiler()
        with profiler.phase("analyze"):
            with profiler.phase("simulate"):
                pass
        total = profiler.total_wall_s()
        spans = {span.name: span for span in profiler.closed_spans()}
        assert total == pytest.approx(spans["analyze"].wall_s)

    def test_summary_is_jsonable(self):
        import json

        profiler = PhaseProfiler()
        with profiler.phase("build"):
            pass
        summary = profiler.summary()
        assert json.dumps(summary)
        assert summary["build"]["count"] == 1
        assert "peak_bytes" not in summary["build"]

    def test_allocation_tracking(self):
        with profiled(track_allocations=True) as profiler:
            with profiler.phase("simulate"):
                _ = [0] * 100_000
        span = profiler.closed_spans()[0]
        assert span.peak_bytes is not None
        assert span.peak_bytes > 100_000 * 4
        assert profiler.summary()["simulate"]["peak_bytes"] == span.peak_bytes

    def test_known_phases_constant(self):
        assert PHASES == ("build", "simulate", "measure", "analyze")


class TestOptInSeam:
    def test_host_phase_is_noop_when_disabled(self):
        assert active_profiler() is None
        with host_phase("build"):
            pass  # must not raise or record anywhere

    def test_host_phase_records_when_installed(self):
        profiler = install_profiler()
        with host_phase("build"):
            pass
        assert [span.name for span in profiler.closed_spans()] == ["build"]

    def test_profiled_context(self):
        with profiled() as profiler:
            assert active_profiler() is profiler
        assert active_profiler() is None


class TestExperimentIntegration:
    def test_fig2_attributes_build_and_simulate(self):
        with profiled() as profiler:
            with profiler.phase("analyze"):
                fig2_connected_standby(cycles=1)
        stats = profiler.stats()
        assert stats["build"].count >= 1
        assert stats["simulate"].count >= 1
        assert stats["analyze"].count == 1
        # simulate dominates an experiment run
        assert stats["simulate"].wall_s > stats["build"].wall_s
        # nested phases never exceed their parent
        assert stats["analyze"].wall_s >= stats["simulate"].wall_s

    def test_analyzer_measure_phase(self):
        from repro.measure.analyzer import PowerAnalyzer
        from repro.sim.trace import TraceRecorder
        from repro.units import seconds_to_ps, us_to_ps

        trace = TraceRecorder()
        trace.record(0, "platform", 1.0)
        trace.record(seconds_to_ps(1.0), "platform", 2.0)
        analyzer = PowerAnalyzer(trace, sampling_interval_ps=us_to_ps(50))
        with profiled() as profiler:
            analyzer.measure(0, seconds_to_ps(1.0))
        assert profiler.stats()["measure"].count == 1

    def test_run_record_attaches_profile(self):
        from repro.obs.runlog import recording

        with profiled():
            with recording() as recorder:
                fig2_connected_standby(cycles=1)
        record = recorder.records[0]
        assert "profile" in record
        assert record["profile"]["simulate"]["count"] >= 1
