"""Tests for the trace recorder."""

import pytest

from repro.sim.trace import TraceRecorder


class TestRecording:
    def test_samples_in_order(self, trace):
        trace.record(0, "a", 1)
        trace.record(10, "a", 2)
        samples = trace.samples("a")
        assert [(s.time_ps, s.value) for s in samples] == [(0, 1), (10, 2)]

    def test_backwards_time_within_channel_rejected(self, trace):
        trace.record(100, "a", 1)
        with pytest.raises(ValueError):
            trace.record(50, "a", 2)

    def test_same_time_allowed(self, trace):
        trace.record(100, "a", 1)
        trace.record(100, "a", 2)
        assert len(trace.samples("a")) == 2

    def test_channels_sorted(self, trace):
        trace.record(0, "zeta", 1)
        trace.record(0, "alpha", 1)
        assert trace.channels() == ["alpha", "zeta"]

    def test_len_counts_all_samples(self, trace):
        trace.record(0, "a", 1)
        trace.record(0, "b", 1)
        assert len(trace) == 2

    def test_last(self, trace):
        assert trace.last("missing") is None
        trace.record(0, "a", 1)
        trace.record(5, "a", 9)
        assert trace.last("a").value == 9


class TestQueries:
    def test_value_at_step_semantics(self, trace):
        trace.record(0, "power", 10)
        trace.record(100, "power", 20)
        assert trace.value_at("power", 50) == 10
        assert trace.value_at("power", 100) == 20
        assert trace.value_at("power", 150) == 20

    def test_value_at_before_first_sample(self, trace):
        trace.record(100, "power", 20)
        assert trace.value_at("power", 50) is None

    def test_intervals(self, trace):
        trace.record(0, "s", "a")
        trace.record(100, "s", "b")
        intervals = list(trace.intervals("s", end_ps=250))
        assert intervals == [(0, 100, "a"), (100, 250, "b")]

    def test_intervals_clip_to_end(self, trace):
        trace.record(0, "s", "a")
        trace.record(100, "s", "b")
        intervals = list(trace.intervals("s", end_ps=60))
        assert intervals == [(0, 60, "a")]

    def test_dwell_times(self, trace):
        trace.record(0, "s", "idle")
        trace.record(100, "s", "busy")
        trace.record(150, "s", "idle")
        dwell = trace.dwell_times("s", end_ps=300)
        assert dwell == {"idle": 100 + 150, "busy": 50}

    def test_transitions(self, trace):
        trace.record(0, "s", "a")
        trace.record(10, "s", "a")  # repeated value: not a transition
        trace.record(20, "s", "b")
        assert trace.transitions("s") == [(20, "a", "b")]

    def test_ordering_by_first_sample(self, trace):
        trace.record(50, "second", 1)
        trace.record(10, "first", 1)
        trace.record(90, "third", 1)
        assert trace.ordering(["third", "first", "second"]) == [
            "first",
            "second",
            "third",
        ]

    def test_ordering_skips_missing_channels(self, trace):
        trace.record(10, "present", 1)
        assert trace.ordering(["present", "absent"]) == ["present"]
