"""Tests for processor-side units: C-states, compute, LLC, SRAMs, boot."""

import pytest

from repro.config import ActivePowerModel, ContextInventory
from repro.errors import FlowError, MemoryFault
from repro.power.domain import PowerDomain
from repro.processor.boot import BootSRAM
from repro.processor.core import ComputeDomain, synthesize_context
from repro.processor.cstates import CSTATE_EXIT_LATENCY_PS, CState
from repro.processor.llc import LastLevelCache
from repro.processor.sr_sram import SaveRestoreSRAMs


class TestCStates:
    def test_ordering(self):
        assert CState.C10 > CState.C8 > CState.C6 > CState.C2 > CState.C0

    def test_flags(self):
        assert CState.C0.is_active
        assert CState.C10.is_drips
        assert not CState.C8.is_drips

    def test_exit_latencies_monotonic(self):
        """Deeper states must cost more to exit (the LTR trade)."""
        ladder = [CState.C0, CState.C2, CState.C6, CState.C8, CState.C10]
        latencies = [CSTATE_EXIT_LATENCY_PS[state] for state in ladder]
        assert latencies == sorted(latencies)


class TestComputeDomain:
    def make(self):
        domain = PowerDomain("compute")
        compute = ComputeDomain("proc", domain, ActivePowerModel(), 0.8, 4096)
        return domain, compute

    def test_active_power_from_model(self):
        domain, compute = self.make()
        compute.start()
        model = ActivePowerModel()
        assert compute.component.power_watts == pytest.approx(
            model.core_dynamic_watts(0.8)
        )

    def test_task_duration_scales_inverse_frequency(self):
        _domain, compute = self.make()
        cycles = 80_000_000
        at_slow = compute.task_duration_ps(cycles)
        compute.set_frequency(1.6)
        assert compute.task_duration_ps(cycles) == pytest.approx(at_slow / 2, rel=1e-9)

    def test_run_task_requires_active(self):
        _domain, compute = self.make()
        with pytest.raises(FlowError):
            compute.run_task(100)

    def test_start_requires_powered_domain(self):
        domain, compute = self.make()
        domain.power_off()
        with pytest.raises(FlowError):
            compute.start()

    def test_voltage_rides_vmin_floor(self):
        """Fig. 6(b) mechanism: V flat up to 1.0 GHz, rising above."""
        _domain, compute = self.make()
        model = compute.active_model
        assert model.voltage(0.8) == model.voltage(1.0)
        assert model.voltage(1.5) > model.voltage(1.0)

    def test_context_generations_differ(self):
        _domain, compute = self.make()
        first = compute.capture_context()
        second = compute.capture_context()
        assert first != second
        compute.verify_restored(second)
        with pytest.raises(FlowError):
            compute.verify_restored(first)

    def test_verify_without_capture_rejected(self):
        _domain, compute = self.make()
        with pytest.raises(FlowError):
            compute.verify_restored(b"x")

    def test_synthesize_context_deterministic(self):
        assert synthesize_context("a", 100, 1) == synthesize_context("a", 100, 1)
        assert synthesize_context("a", 100, 1) != synthesize_context("b", 100, 1)


class TestLLC:
    def test_flush_latency_scales_with_dirt(self):
        llc = LastLevelCache(3 * 1024 * 1024, typical_dirty_fraction=0.25)
        llc.mark_typical_dirty()
        full = llc.flush_latency_ps(17.9e9)
        llc.flush()
        llc.touch(1024)
        assert llc.flush_latency_ps(17.9e9) < full

    def test_power_off_requires_clean(self):
        llc = LastLevelCache(1024)
        llc.touch(100)
        with pytest.raises(FlowError):
            llc.power_off()
        llc.flush()
        llc.power_off()
        assert not llc.powered

    def test_flush_returns_bytes_and_clears(self):
        llc = LastLevelCache(1024)
        llc.touch(300)
        assert llc.flush() == 300
        assert llc.dirty_bytes == 0
        assert llc.flush_count == 1

    def test_dirty_capped_at_capacity(self):
        llc = LastLevelCache(1024)
        llc.touch(5000)
        assert llc.dirty_bytes == 1024

    def test_flush_powered_off_rejected(self):
        llc = LastLevelCache(1024)
        llc.power_off()
        with pytest.raises(FlowError):
            llc.flush()


class TestSaveRestoreSRAMs:
    def make(self):
        domain = PowerDomain("retention")
        inventory = ContextInventory(
            system_agent_bytes=1024, cores_bytes=2048, graphics_bytes=1024
        )
        return domain, SaveRestoreSRAMs(domain, inventory, retention_budget_watts=0.0054)

    def test_budget_split_by_capacity(self):
        _domain, srams = self.make()
        assert srams.retention_power_watts == pytest.approx(0.0054)
        assert srams.compute_sram.retention_power_watts() == pytest.approx(
            3 * srams.sa_sram.retention_power_watts()
        )

    def test_context_roundtrip_through_retention(self):
        _domain, srams = self.make()
        sa = synthesize_context("sa", 1024)
        compute = synthesize_context("cores", 3072)
        srams.save_sa_context(sa)
        srams.save_compute_context(compute)
        srams.enter_retention()
        srams.exit_retention()
        assert srams.load_sa_context(1024) == sa
        assert srams.load_compute_context(3072) == compute

    def test_oversized_context_rejected(self):
        _domain, srams = self.make()
        with pytest.raises(MemoryFault):
            srams.save_sa_context(bytes(2048))

    def test_power_off_drops_draw(self):
        domain, srams = self.make()
        srams.power_off()
        assert domain.nominal_load_watts() == 0.0


class TestBootSRAM:
    def test_store_and_load_record(self):
        domain = PowerDomain("pmu")
        boot = BootSRAM(domain)
        boot.store({"firmware_state": {"a": 1}, "wake_target": 5},
                   {"protected_base": 100, "protected_size": 10, "locked": True},
                   b"\x01\x02")
        record = boot.load()
        assert record["pmu"]["wake_target"] == 5
        assert record["controller"]["locked"] is True
        assert record["mee"] == b"\x01\x02"

    def test_mee_state_optional(self):
        boot = BootSRAM(PowerDomain("pmu"))
        boot.store({}, {}, None)
        assert boot.load()["mee"] is None

    def test_empty_boot_sram_rejected(self):
        boot = BootSRAM(PowerDomain("pmu"))
        with pytest.raises(FlowError):
            boot.load()

    def test_oversized_record_rejected(self):
        boot = BootSRAM(PowerDomain("pmu"), capacity_bytes=64)
        with pytest.raises(MemoryFault):
            boot.store({"firmware_state": {"k" * 100: 1}, "wake_target": None}, {}, None)

    def test_paper_size_bound(self):
        """Sec. 6.2: ~1 KB, 'only 0.5% of the entire processor context'."""
        from repro.config import ContextInventory

        inventory = ContextInventory()
        assert inventory.boot_bytes / inventory.total_bytes == pytest.approx(0.005, abs=0.001)
