"""Tests for the sparse backing store."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryFault
from repro.memory.store import PAGE_SIZE, SparseMemory


class TestBasics:
    def test_unwritten_reads_fill_value(self):
        memory = SparseMemory(1024, fill=0xAB)
        assert memory.read(0, 4) == b"\xab\xab\xab\xab"

    def test_roundtrip(self):
        memory = SparseMemory(1 << 20)
        memory.write(1000, b"hello")
        assert memory.read(1000, 5) == b"hello"

    def test_cross_page_write(self):
        memory = SparseMemory(3 * PAGE_SIZE)
        data = bytes(range(256)) * 20  # spans pages
        memory.write(PAGE_SIZE - 100, data)
        assert memory.read(PAGE_SIZE - 100, len(data)) == data

    def test_pages_materialize_lazily(self):
        memory = SparseMemory(1 << 30)
        assert memory.resident_pages == 0
        memory.write(12345, b"x")
        assert memory.resident_pages == 1
        memory.read(1 << 29, 64)  # read does not allocate
        assert memory.resident_pages == 1

    def test_out_of_range_rejected(self):
        memory = SparseMemory(100)
        with pytest.raises(MemoryFault):
            memory.read(90, 20)
        with pytest.raises(MemoryFault):
            memory.write(99, b"ab")
        with pytest.raises(MemoryFault):
            memory.read(-1, 1)

    def test_erase_drops_everything(self):
        memory = SparseMemory(1024, fill=0)
        memory.write(0, b"data")
        memory.erase()
        assert memory.read(0, 4) == b"\x00\x00\x00\x00"
        assert memory.resident_pages == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(MemoryFault):
            SparseMemory(0)
        with pytest.raises(MemoryFault):
            SparseMemory(10, fill=300)


class TestProperties:
    @given(
        address=st.integers(min_value=0, max_value=3 * PAGE_SIZE),
        data=st.binary(min_size=1, max_size=2 * PAGE_SIZE),
    )
    @settings(max_examples=50, deadline=None)
    def test_write_then_read_roundtrip(self, address, data):
        memory = SparseMemory(8 * PAGE_SIZE)
        memory.write(address, data)
        assert memory.read(address, len(data)) == data

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_non_overlapping_writes_independent(self, data):
        memory = SparseMemory(4 * PAGE_SIZE)
        first = data.draw(st.binary(min_size=1, max_size=100))
        second = data.draw(st.binary(min_size=1, max_size=100))
        memory.write(0, first)
        memory.write(2 * PAGE_SIZE, second)
        assert memory.read(0, len(first)) == first
        assert memory.read(2 * PAGE_SIZE, len(second)) == second
