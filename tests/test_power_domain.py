"""Tests for components, power domains and rails."""

import pytest

from repro.errors import PowerError
from repro.power.domain import Component, PowerDomain, Rail
from repro.power.gates import BoardFETGate
from repro.power.regulator import EfficiencyCurve, Regulator


def make_rail(name="rail", efficiency=1.0, quiescent=0.0):
    regulator = Regulator(f"vr:{name}", EfficiencyCurve.constant(efficiency), quiescent)
    return Rail(name, 1.0, regulator)


class TestComponent:
    def test_power_terms(self):
        component = Component("c", leakage_watts=0.2, dynamic_watts=0.3)
        assert component.power_watts == pytest.approx(0.5)
        assert component.leakage_watts == pytest.approx(0.2)
        assert component.dynamic_watts == pytest.approx(0.3)

    def test_negative_power_rejected(self):
        with pytest.raises(PowerError):
            Component("c", leakage_watts=-1.0)
        component = Component("c")
        with pytest.raises(PowerError):
            component.set_dynamic(-0.1)
        with pytest.raises(PowerError):
            component.set_leakage(-0.1)

    def test_double_attach_rejected(self):
        domain_a = PowerDomain("a")
        domain_b = PowerDomain("b")
        component = domain_a.new_component("c")
        with pytest.raises(PowerError):
            domain_b.add(component)

    def test_set_power_single_notification(self):
        domain = PowerDomain("d")
        changes = []
        domain.set_listener(lambda: changes.append(1))
        component = domain.new_component("c")
        changes.clear()
        component.set_power(0.1, 0.2)
        assert len(changes) == 1
        assert component.power_watts == pytest.approx(0.3)

    def test_powered_reflects_domain(self):
        domain = PowerDomain("d")
        component = domain.new_component("c", 0.1)
        assert component.powered
        domain.power_off()
        assert not component.powered


class TestPowerDomain:
    def test_nominal_load_sums_components(self):
        domain = PowerDomain("d")
        domain.new_component("a", 0.1)
        domain.new_component("b", 0.2)
        assert domain.nominal_load_watts() == pytest.approx(0.3)

    def test_power_off_drops_load(self):
        domain = PowerDomain("d")
        domain.new_component("a", 0.5)
        domain.power_off()
        assert domain.load_watts() == 0.0
        assert not domain.delivering

    def test_gated_domain_leaks_fraction(self):
        gate = BoardFETGate("fet")
        domain = PowerDomain("d", gate)
        domain.new_component("a", 1.0)
        domain.power_off()
        assert not gate.closed
        assert domain.load_watts() == pytest.approx(1.0 * gate.leakage_fraction)

    def test_gate_conduction_loss_when_on(self):
        gate = BoardFETGate("fet")
        domain = PowerDomain("d", gate)
        domain.new_component("a", 1.0)
        assert domain.load_watts() == pytest.approx(1.0 * (1 + gate.conduction_loss_fraction))

    def test_power_on_restores(self):
        domain = PowerDomain("d")
        domain.new_component("a", 0.5)
        domain.power_off()
        domain.power_on()
        assert domain.load_watts() == pytest.approx(0.5)
        assert domain.transition_count == 2

    def test_listener_fires_on_changes(self):
        domain = PowerDomain("d")
        calls = []
        domain.set_listener(lambda: calls.append(1))
        component = domain.new_component("a", 0.1)
        component.set_leakage(0.2)
        domain.power_off()
        assert len(calls) == 3


class TestRail:
    def test_input_power_with_efficiency(self):
        rail = make_rail(efficiency=0.5)
        domain = rail.new_domain("d")
        domain.new_component("a", 1.0)
        assert rail.input_power() == pytest.approx(2.0)

    def test_quiescent_added(self):
        rail = make_rail(quiescent=0.1)
        domain = rail.new_domain("d")
        domain.new_component("a", 1.0)
        assert rail.input_power() == pytest.approx(1.1)

    def test_turn_off_requires_unloaded(self):
        rail = make_rail()
        domain = rail.new_domain("d")
        domain.new_component("a", 1.0)
        with pytest.raises(PowerError):
            rail.turn_off()
        domain.power_off()
        rail.turn_off()
        assert rail.input_power() == 0.0

    def test_disabled_rail_with_load_faults(self):
        rail = make_rail()
        domain = rail.new_domain("d")
        domain.new_component("a", 0.0)
        rail.turn_off()
        # loading the rail now violates the sequencing contract
        with pytest.raises(PowerError):
            domain.components[0].set_leakage(1.0)
            rail.input_power()

    def test_breakdown(self):
        rail = make_rail()
        d1 = rail.new_domain("one")
        d2 = rail.new_domain("two")
        d1.new_component("a", 0.1)
        d2.new_component("b", 0.2)
        assert rail.breakdown() == pytest.approx({"one": 0.1, "two": 0.2})

    def test_invalid_voltage_rejected(self):
        regulator = Regulator("vr", EfficiencyCurve.constant(1.0))
        with pytest.raises(PowerError):
            Rail("bad", 0.0, regulator)
