"""Tests for the Step calibration (Sec. 4.1.3, Equations 2-4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.clocks.crystal import CrystalOscillator
from repro.errors import TimerError
from repro.timers.calibration import (
    StepCalibrator,
    fractional_bits_for_precision,
    integer_bits_for_ratio,
    worst_case_drift_ppb,
)


class TestRegisterSizing:
    def test_equation_2_integer_bits(self):
        """m = floor(log2(24 MHz / 32.768 kHz)) + 1 = 10."""
        assert integer_bits_for_ratio(24e6, 32768.0) == 10

    def test_equation_4_fractional_bits(self):
        """f = 21 for 1 ppb at 24 MHz / 32.768 kHz."""
        assert fractional_bits_for_precision(24e6, 32768.0, ppb=1.0) == 21

    def test_looser_precision_needs_fewer_bits(self):
        tight = fractional_bits_for_precision(24e6, 32768.0, ppb=1.0)
        loose = fractional_bits_for_precision(24e6, 32768.0, ppb=1000.0)
        assert loose < tight

    def test_faster_clock_needs_more_integer_bits(self):
        assert integer_bits_for_ratio(100e6, 32768.0) > integer_bits_for_ratio(24e6, 32768.0)

    def test_worst_case_drift_below_target(self):
        """The f=21 register keeps quantization drift under 1 ppb."""
        assert worst_case_drift_ppb(24e6, 32768.0, 21) < 1.0
        assert worst_case_drift_ppb(24e6, 32768.0, 20) >= worst_case_drift_ppb(24e6, 32768.0, 21)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(TimerError):
            integer_bits_for_ratio(1.0, 2.0)  # fast must exceed slow
        with pytest.raises(TimerError):
            fractional_bits_for_precision(24e6, 32768.0, ppb=0.0)


class TestCalibrationRun:
    def make(self, fast_ppm=0.0, slow_ppm=0.0):
        fast = CrystalOscillator("f", 24e6, ppm_error=fast_ppm)
        slow = CrystalOscillator("s", 32768.0, ppm_error=slow_ppm)
        return fast, slow, StepCalibrator.for_precision(fast, slow)

    def test_window_spans_2_to_f_slow_cycles(self):
        _f, slow, calibrator = self.make()
        assert calibrator.n_slow == 2**21
        assert calibrator.duration_ps() == 2**21 * slow.period_ps

    def test_measured_ratio_close_to_true_ratio(self):
        fast, slow, calibrator = self.make(fast_ppm=37.0, slow_ppm=-12.0)
        result = calibrator.run(0)
        true_ratio = fast.effective_hz / slow.effective_hz
        assert result.measured_ratio == pytest.approx(true_ratio, rel=1e-6)
        assert result.step.to_float() == pytest.approx(true_ratio, rel=1e-6)

    def test_step_has_sized_registers(self):
        _f, _s, calibrator = self.make()
        result = calibrator.run(0)
        assert result.step.frac_bits == 21
        assert result.step.int_bits == 10
        assert result.step.integer_part < 1 << 10

    def test_calibration_window_aligned_to_slow_edge(self):
        _f, slow, calibrator = self.make()
        result = calibrator.run(123_456)
        assert result.start_ps == slow.next_edge(123_456)

    def test_requires_running_crystals(self):
        fast, slow, calibrator = self.make()
        fast.disable(0)
        with pytest.raises(TimerError):
            calibrator.run(0)
        fast.enable(0)
        slow.disable(0)
        with pytest.raises(TimerError):
            calibrator.run(0)

    def test_paper_lasts_several_seconds(self):
        """'This calibration process lasts for several seconds.'"""
        _f, _s, calibrator = self.make()
        seconds = calibrator.duration_ps() / 1e12
        assert 10 < seconds < 120  # 2^21 slow cycles = 64 s

    @given(
        fast_ppm=st.floats(min_value=-200, max_value=200),
        slow_ppm=st.floats(min_value=-200, max_value=200),
    )
    @settings(max_examples=30, deadline=None)
    def test_step_quantization_property(self, fast_ppm, slow_ppm):
        """The calibrated Step is within one quantum of the true ratio."""
        fast, slow, calibrator = self.make(fast_ppm, slow_ppm)
        result = calibrator.run(0)
        true_ratio = fast.effective_hz / slow.effective_hz
        # N_fast counting is exact; the only error is edge alignment (<=1
        # fast count over 2^21 slow cycles) plus the point placement.
        assert abs(result.step.to_float() - true_ratio) < 2 * result.step.quantum + 1e-6
