"""Tests for the analysis package: Equation 1, scaling, sweeps, tables."""

import pytest

from repro.analysis.average_power import AveragePowerModel, StatePoint
from repro.analysis.report import format_table
from repro.analysis.scaling import scale_power, scaling_factor
from repro.analysis.sweep import relative_to_first, sweep
from repro.config import PROCESS_14NM, PROCESS_22NM, skylake_config
from repro.errors import AnalysisError, ConfigError


def _square(value: int) -> float:
    """Module-level (picklable) experiment for the parallel sweep test."""
    return float(value * value)


class TestEquation1:
    def test_weighted_sum(self):
        model = AveragePowerModel(
            [
                StatePoint("active", 3.0, 0.15),
                StatePoint("drips", 0.060, 29.85),
            ]
        )
        expected = (3.0 * 0.15 + 0.060 * 29.85) / 30.0
        assert model.average_power() == pytest.approx(expected)

    def test_residency(self):
        model = AveragePowerModel(
            [StatePoint("a", 1.0, 1.0), StatePoint("b", 2.0, 3.0)]
        )
        assert model.residency("b") == pytest.approx(0.75)

    def test_terms_sum_to_average(self):
        model = AveragePowerModel(
            [
                StatePoint("active", 3.0, 0.145),
                StatePoint("entry", 0.9, 0.0002),
                StatePoint("drips", 0.060, 30.0),
                StatePoint("exit", 1.2, 0.0003),
            ]
        )
        assert sum(model.terms().values()) == pytest.approx(model.average_power())

    def test_connected_standby_factory_matches_paper(self):
        """The analytical model reproduces the ~74-75 mW baseline average."""
        model = AveragePowerModel.for_connected_standby()
        assert model.average_power() * 1e3 == pytest.approx(74.5, abs=1.5)
        assert model.residency("drips") > 0.99

    def test_analytical_model_matches_simulation(self):
        """Equation 1 cross-check: closed form vs the simulator."""
        from repro.core import ODRIPSController, TechniqueSet

        simulated = ODRIPSController(TechniqueSet.baseline()).measure(cycles=1)
        analytical = AveragePowerModel.for_connected_standby()
        assert simulated.average_power_w == pytest.approx(
            analytical.average_power(), rel=0.02
        )

    def test_empty_model_rejected(self):
        with pytest.raises(ConfigError):
            AveragePowerModel([])

    def test_negative_state_rejected(self):
        with pytest.raises(ConfigError):
            StatePoint("x", -1.0, 1.0)


class TestScaling:
    def test_leakage_scaling_reduces_power(self):
        """22 nm -> 14 nm shrinks leakage (the Sec. 7 direction)."""
        assert scaling_factor(PROCESS_22NM, PROCESS_14NM, "leakage") < 1.0

    def test_dynamic_scaling_reduces_power(self):
        assert scaling_factor(PROCESS_22NM, PROCESS_14NM, "dynamic") < 1.0

    def test_round_trip_is_identity(self):
        forward = scaling_factor(PROCESS_22NM, PROCESS_14NM, "leakage")
        backward = scaling_factor(PROCESS_14NM, PROCESS_22NM, "leakage")
        assert forward * backward == pytest.approx(1.0)

    def test_scale_power(self):
        scaled = scale_power(1.0, PROCESS_22NM, PROCESS_14NM, "dynamic")
        assert scaled == pytest.approx(0.72 * 0.93**2)

    def test_haswell_config_is_scaled_back_skylake(self):
        from repro.config import haswell_config

        haswell = haswell_config()
        skylake = skylake_config()
        ratio = haswell.budget.sr_sram_w / skylake.budget.sr_sram_w
        assert ratio == pytest.approx(1 / PROCESS_14NM.leakage_scale)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            scaling_factor(PROCESS_22NM, PROCESS_14NM, "thermal")


class TestTemperature:
    def test_reference_temperature_is_identity(self):
        from repro.analysis.scaling import (
            drips_power_at_temperature,
            temperature_leakage_factor,
        )

        budget = skylake_config().budget
        assert temperature_leakage_factor(30.0) == pytest.approx(1.0)
        assert drips_power_at_temperature(budget, 30.0) == pytest.approx(
            budget.platform_total_w()
        )

    def test_leakage_doubles_per_doubling_interval(self):
        from repro.analysis.scaling import temperature_leakage_factor

        assert temperature_leakage_factor(30.0 + 22.0) == pytest.approx(2.0)
        assert temperature_leakage_factor(30.0 - 22.0) == pytest.approx(0.5)

    def test_hotter_platform_draws_more(self):
        from repro.analysis.scaling import drips_power_at_temperature

        budget = skylake_config().budget
        cold = drips_power_at_temperature(budget, 10.0)
        nominal = drips_power_at_temperature(budget, 30.0)
        hot = drips_power_at_temperature(budget, 50.0)
        assert cold < nominal < hot

    def test_crystals_are_temperature_flat(self):
        """Only leakage-classified fractions scale; the crystals are
        dynamic and must not contribute to the temperature swing."""
        from repro.analysis.scaling import LEAKAGE_FRACTION_OF_SLICE

        assert LEAKAGE_FRACTION_OF_SLICE["fast_xtal_w"] == 0.0
        assert LEAKAGE_FRACTION_OF_SLICE["slow_xtal_w"] == 0.0
        assert LEAKAGE_FRACTION_OF_SLICE["sr_sram_w"] == 1.0


class TestSweepHelpers:
    def test_sweep_collects(self):
        points = sweep([1, 2, 3], lambda x: x * 10.0)
        assert points == [(1, 10.0), (2, 20.0), (3, 30.0)]

    def test_relative_to_first(self):
        deltas = relative_to_first([(1, 100.0), (2, 99.0), (3, 102.0)])
        assert deltas[0][1] == pytest.approx(0.0)
        assert deltas[1][1] == pytest.approx(-0.01)
        assert deltas[2][1] == pytest.approx(+0.02)

    def test_relative_with_zero_reference_rejected(self):
        with pytest.raises(AnalysisError):
            relative_to_first([(1, 0.0), (2, 5.0)])

    def test_relative_with_near_zero_reference_rejected(self):
        """Float-equality-free zero check: denormal references also raise."""
        with pytest.raises(AnalysisError):
            relative_to_first([(1, 1e-15), (2, 5.0)])

    def test_relative_empty_points(self):
        assert relative_to_first([]) == []

    def test_parallel_sweep_matches_serial(self):
        """parallel=True returns the same ordered pairs as the serial path."""
        serial = sweep([1, 2, 3], _square)
        parallel = sweep([1, 2, 3], _square, parallel=True, max_workers=2)
        assert parallel == serial


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 20.25]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        assert "alpha" in lines[4]
        assert all(len(line) <= max(len(l) for l in lines) for line in lines)

    def test_small_floats_keep_precision(self):
        text = format_table(["v"], [[0.00042]])
        assert "0.00042" in text
