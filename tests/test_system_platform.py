"""Tests for the integrated platform: construction, state power levels."""

import pytest

from repro.config import skylake_config
from repro.core.techniques import ContextStore, TechniqueSet
from repro.errors import FlowError
from repro.system.skylake import AON_IO_PAD_SHARES, SkylakePlatform
from repro.system.states import PlatformState

from _platform import build_platform


class TestConstruction:
    def test_boot_lands_in_active(self, baseline_platform):
        baseline_platform.boot()
        assert baseline_platform.state is PlatformState.ACTIVE
        assert baseline_platform.booted

    def test_double_boot_rejected(self, baseline_platform):
        baseline_platform.boot()
        with pytest.raises(FlowError):
            baseline_platform.boot()

    def test_pad_shares_sum_to_one(self):
        assert sum(AON_IO_PAD_SHARES.values()) == pytest.approx(1.0)

    def test_aon_io_bank_matches_budget(self, baseline_platform):
        budget = baseline_platform.config.budget
        assert baseline_platform.aon_io_bank.total_power_watts() == pytest.approx(
            budget.aon_io_bank_w
        )

    def test_mee_present_only_for_protected_stores(self):
        assert build_platform(TechniqueSet.baseline()).mee is None
        assert build_platform(TechniqueSet.ctx_sgx_dram_only(), small_context=True).mee is not None
        assert build_platform(TechniqueSet.odrips_pcm(), small_context=True).mee is not None
        assert build_platform(TechniqueSet.odrips_mram(), small_context=True).mee is None

    def test_pcm_replaces_dram(self):
        platform = build_platform(TechniqueSet.odrips_pcm(), small_context=True)
        assert platform.board.is_pcm_main_memory
        assert platform.board.memory.name.startswith("pcm")

    def test_chipset_sram_store(self):
        from repro.core.techniques import Technique

        techniques = TechniqueSet({Technique.CTX_SGX_DRAM}, ContextStore.CHIPSET_SRAM)
        platform = build_platform(techniques, small_context=True)
        assert platform.chipset_context_sram is not None

    def test_calibration_runs_at_boot_only_with_wake_up_off(self):
        baseline = build_platform(TechniqueSet.baseline())
        baseline.boot()
        assert not baseline.chipset.calibrated
        odrips = build_platform(TechniqueSet.wake_up_off_only())
        odrips.boot()
        assert odrips.chipset.calibrated


class TestStatePowerLevels:
    def test_active_power_near_3w(self, baseline_platform):
        """Sec. 7: ~3 W in C0 with the display off."""
        baseline_platform.boot()
        assert baseline_platform.platform_power() == pytest.approx(3.0, abs=0.15)

    def test_baseline_drips_power_near_60mw(self, baseline_platform):
        """Fig. 1(b): ~60 mW platform DRIPS power.

        ``apply_drips_state`` sets the power levels; the device-state side
        effects (context into retention SRAM, DRAM into self-refresh) are
        the flows' job, so this test performs them manually.
        """
        baseline_platform.boot()
        baseline_platform.sr_srams.power_on()
        baseline_platform.sr_srams.enter_retention()
        baseline_platform.apply_drips_state()
        baseline_platform.memory_controller.enter_self_refresh()
        assert baseline_platform.platform_power() * 1e3 == pytest.approx(60.0, abs=1.0)

    def test_budget_total_is_60mw(self):
        assert skylake_config().budget.platform_total_w() * 1e3 == pytest.approx(60.0, abs=0.1)

    def test_processor_share_is_18_percent(self):
        budget = skylake_config().budget
        share = budget.processor_total_w() / budget.platform_total_w()
        assert share == pytest.approx(0.18, abs=0.005)

    def test_odrips_drips_power_below_baseline(self):
        baseline = build_platform(TechniqueSet.baseline())
        baseline.boot()
        baseline.apply_drips_state()
        baseline.memory_controller.enter_self_refresh()
        base_power = baseline.platform_power()

        odrips = build_platform(TechniqueSet.odrips(), small_context=True)
        odrips.boot()
        odrips.sr_srams.power_off()
        odrips.board.fast_xtal.disable(0)
        odrips.dom_aon_io.power_off()
        odrips.apply_drips_state()
        odrips.memory_controller.enter_self_refresh()
        assert odrips.platform_power() < base_power * 0.80

    def test_flow_power_pinning(self, baseline_platform):
        baseline_platform.boot()
        baseline_platform.set_total_power(0.9)
        assert baseline_platform.platform_power() == pytest.approx(0.9, abs=1e-6) or (
            baseline_platform.platform_power() > 0.9
        )
        # with compute stopped the pin is exact
        baseline_platform.compute.stop()
        baseline_platform.uncore_component.set_power(0.0)
        baseline_platform.set_total_power(0.9)
        assert baseline_platform.platform_power() == pytest.approx(0.9)


class TestLevers:
    def test_core_frequency_lever(self, baseline_platform):
        baseline_platform.boot()
        before = baseline_platform.platform_power()
        baseline_platform.set_core_frequency(1.5)
        assert baseline_platform.platform_power() > before

    def test_dram_frequency_lever(self, baseline_platform):
        baseline_platform.boot()
        before = baseline_platform.platform_power()
        baseline_platform.set_dram_frequency(0.8e9)
        assert baseline_platform.platform_power() < before

    def test_dram_lever_noop_for_pcm(self):
        platform = build_platform(TechniqueSet.odrips_pcm(), small_context=True)
        platform.boot()
        platform.set_dram_frequency(0.8e9)  # must not raise

    def test_next_timer_target(self, baseline_platform):
        baseline_platform.boot()
        now_count = baseline_platform.pmu.tsc.read(baseline_platform.kernel.now)
        target = baseline_platform.next_timer_target(1.0)
        assert target - now_count == pytest.approx(24e6, rel=1e-4)
