"""Tests for wake-event classification."""

from repro.io.wake import WakeEvent, WakeEventType


class TestWakeEventType:
    def test_thermal_handled_by_pmu_alone(self):
        """Sec. 2.2: only wakes that need core handling power the cores
        up; the thermal report can be serviced by the PMU."""
        assert not WakeEventType.THERMAL.needs_cores

    def test_user_and_network_need_cores(self):
        assert WakeEventType.USER_INPUT.needs_cores
        assert WakeEventType.NETWORK.needs_cores
        assert WakeEventType.TIMER.needs_cores

    def test_values_are_stable_strings(self):
        """The string values appear in trace logs and CSVs; renaming
        them silently would break recorded traces."""
        assert WakeEventType.TIMER.value == "timer"
        assert WakeEventType.NETWORK.value == "network"
        assert WakeEventType.THERMAL.value == "thermal"


class TestWakeEvent:
    def test_str_includes_type_and_time(self):
        event = WakeEvent(WakeEventType.NETWORK, 12345, detail="push")
        text = str(event)
        assert "network" in text
        assert "12345" in text
        assert "push" in text

    def test_timer_target_carried(self):
        event = WakeEvent(WakeEventType.TIMER, 0, timer_target=999)
        assert event.timer_target == 999

    def test_frozen(self):
        import dataclasses

        event = WakeEvent(WakeEventType.TIMER, 0)
        try:
            event.time_ps = 1
            raised = False
        except dataclasses.FrozenInstanceError:
            raised = True
        assert raised
