"""Tests for the MEE metadata cache."""

import pytest

from repro.errors import SecurityError
from repro.sgx.cache import MEECache


class TestLookup:
    def test_miss_then_hit(self):
        cache = MEECache(sets=4, ways=2)
        assert cache.lookup((1, 0)) is None
        cache.insert((1, 0), 42)
        assert cache.lookup((1, 0)) == 42
        assert cache.hits == 1
        assert cache.misses == 1

    def test_insert_updates_value(self):
        cache = MEECache(sets=4, ways=2)
        cache.insert((1, 0), 1)
        cache.insert((1, 0), 2)
        assert cache.lookup((1, 0)) == 2
        assert cache.occupancy == 1

    def test_invalidate(self):
        cache = MEECache()
        cache.insert((0, 5), 9)
        cache.invalidate((0, 5))
        assert cache.lookup((0, 5)) is None

    def test_flush(self):
        cache = MEECache()
        for index in range(10):
            cache.insert((0, index), index)
        cache.flush()
        assert cache.occupancy == 0

    def test_hit_rate(self):
        cache = MEECache()
        cache.insert((0, 0), 1)
        cache.lookup((0, 0))
        cache.lookup((0, 1))
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert MEECache().hit_rate() == 0.0


class TestEviction:
    def test_lru_within_set(self):
        cache = MEECache(sets=1, ways=2)
        cache.insert((0, 0), 0)
        cache.insert((0, 1), 1)
        cache.lookup((0, 0))       # 0 becomes MRU
        cache.insert((0, 2), 2)    # evicts 1
        assert cache.lookup((0, 1)) is None
        assert cache.lookup((0, 0)) == 0
        assert cache.evictions == 1

    def test_capacity(self):
        cache = MEECache(sets=8, ways=4)
        assert cache.capacity == 32

    def test_occupancy_bounded_by_capacity(self):
        cache = MEECache(sets=2, ways=2)
        for index in range(100):
            cache.insert((0, index), index)
        assert cache.occupancy <= cache.capacity

    def test_invalid_geometry_rejected(self):
        with pytest.raises(SecurityError):
            MEECache(sets=0, ways=1)
        with pytest.raises(SecurityError):
            MEECache(sets=1, ways=0)
