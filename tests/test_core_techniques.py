"""Tests for technique-set validation and labeling."""

import pytest

from repro.core.techniques import ContextStore, Technique, TechniqueSet
from repro.errors import ConfigError


class TestValidation:
    def test_baseline_is_empty(self):
        techniques = TechniqueSet.baseline()
        assert techniques.is_baseline
        assert not techniques.wake_up_off
        assert techniques.context_store is ContextStore.PROCESSOR_SRAM

    def test_io_gate_requires_wake_up_off(self):
        """Sec. 8 footnote 4: gating the IOs needs the chipset to own
        the wake events first."""
        with pytest.raises(ConfigError):
            TechniqueSet({Technique.AON_IO_GATE})

    def test_ctx_store_requires_ctx_technique(self):
        with pytest.raises(ConfigError):
            TechniqueSet(set(), ContextStore.DRAM_SGX)
        with pytest.raises(ConfigError):
            TechniqueSet(set(), ContextStore.PCM)

    def test_ctx_technique_requires_moved_store(self):
        with pytest.raises(ConfigError):
            TechniqueSet({Technique.CTX_SGX_DRAM}, ContextStore.PROCESSOR_SRAM)

    def test_full_odrips_with_processor_sram_rejected(self):
        with pytest.raises(ConfigError):
            TechniqueSet.odrips(ContextStore.PROCESSOR_SRAM)

    def test_membership(self):
        techniques = TechniqueSet.with_io_gating()
        assert Technique.WAKE_UP_OFF in techniques
        assert Technique.AON_IO_GATE in techniques
        assert Technique.CTX_SGX_DRAM not in techniques


class TestLabels:
    @pytest.mark.parametrize(
        "factory,expected",
        [
            (TechniqueSet.baseline, "Baseline (DRIPS)"),
            (TechniqueSet.wake_up_off_only, "WAKE-UP-OFF"),
            (TechniqueSet.with_io_gating, "AON-IO-GATE"),
            (TechniqueSet.ctx_sgx_dram_only, "CTX-SGX-DRAM"),
            (TechniqueSet.odrips, "ODRIPS"),
            (TechniqueSet.odrips_mram, "ODRIPS-MRAM"),
            (TechniqueSet.odrips_pcm, "ODRIPS-PCM"),
        ],
    )
    def test_paper_labels(self, factory, expected):
        assert factory().label() == expected

    def test_full_odrips_flag(self):
        assert TechniqueSet.odrips().is_full_odrips
        assert not TechniqueSet.with_io_gating().is_full_odrips


class TestContextStoreProperties:
    def test_off_chip_stores(self):
        assert ContextStore.DRAM_SGX.off_chip
        assert ContextStore.PCM.off_chip
        assert ContextStore.CHIPSET_SRAM.off_chip
        assert not ContextStore.PROCESSOR_SRAM.off_chip
        assert not ContextStore.EMRAM.off_chip

    def test_non_volatile_stores(self):
        assert ContextStore.EMRAM.non_volatile
        assert ContextStore.PCM.non_volatile
        assert not ContextStore.DRAM_SGX.non_volatile
