"""Exporter tests: terminal tables, profiler export, edge cases.

Direct assertions over ``repro.obs.export`` — the aligned-column
terminal digest (column alignment, empty-trace and counter-only edge
cases), and the profiler's three export paths (Chrome trace process,
JSONL phase records, "Host phases" table).
"""

from __future__ import annotations

import json

from repro.obs.export import (
    HOST_PID,
    TRACE_PID,
    chrome_trace,
    jsonl_lines,
    render_profile,
    render_summary,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.tracer import MEASURE_TRACK, Tracer


def make_tracer() -> Tracer:
    tracer = Tracer()
    span = tracer.begin("entry:llc-flush", 100)
    tracer.end(span, 1_100)
    span = tracer.begin("analyzer:platform", 0, track=MEASURE_TRACK)
    tracer.end(span, 2_000)
    tracer.metrics.counter("cache.hit").inc(3)
    return tracer


def make_profiler() -> PhaseProfiler:
    profiler = PhaseProfiler()
    with profiler.phase("analyze"):
        with profiler.phase("build"):
            pass
        with profiler.phase("simulate"):
            pass
    return profiler


class TestRenderSummaryTables:
    def test_columns_are_aligned(self):
        text = render_summary(make_tracer())
        lines = text.splitlines()
        header = next(line for line in lines if line.startswith("track"))
        rule = lines[lines.index(header) + 1]
        rows = [line for line in lines[lines.index(header) + 2:] if line.strip()]
        # the rule row dashes mark every column edge; each data row's
        # column text starts exactly where the header's does
        for column in ("track", "span", "count", "total sim time"):
            offset = header.index(column)
            assert rule[offset] == "-"
        starts = [header.index(name) for name in ("span", "count")]
        for row in rows[:2]:
            for offset in starts:
                assert row[offset - 1] == " "

    def test_span_totals_and_counters_render(self):
        text = render_summary(make_tracer())
        assert "Spans" in text
        assert "entry:llc-flush" in text
        assert "Counters" in text
        assert "cache.hit" in text

    def test_empty_tracer_renders_empty(self):
        assert render_summary(Tracer()) == ""

    def test_counter_only_tracer(self):
        tracer = Tracer()
        tracer.metrics.counter("cache.miss").inc()
        text = render_summary(tracer)
        assert "Counters" in text
        assert "cache.miss" in text
        assert "Spans" not in text

    def test_metrics_only_view_hides_spans(self):
        text = render_summary(make_tracer(), include_spans=False)
        assert "Spans" not in text
        assert "Counters" in text

    def test_leaked_spans_are_called_out(self):
        tracer = Tracer()
        tracer.begin("never-closed", 42)
        text = render_summary(tracer)
        assert "LEAKED SPANS" in text
        assert "never-closed" in text


class TestRenderProfile:
    def test_host_phase_table(self):
        text = render_profile(make_profiler())
        assert "Host phases" in text
        for phase in ("build", "simulate", "analyze"):
            assert phase in text
        assert "ms" in text

    def test_empty_profiler_renders_empty(self):
        assert render_profile(PhaseProfiler()) == ""

    def test_peak_alloc_column_only_when_tracked(self):
        untracked = render_profile(make_profiler())
        assert "peak alloc" not in untracked
        profiler = PhaseProfiler(track_allocations=True)
        with profiler.phase("build"):
            _ = [0] * 10_000
        profiler.close()
        tracked = render_profile(profiler)
        assert "peak alloc" in tracked
        assert "KiB" in tracked

    def test_summary_appends_profile_section(self):
        text = render_summary(make_tracer(), profiler=make_profiler())
        assert "Counters" in text
        assert "Host phases" in text


class TestChromeTraceProfiler:
    def test_host_process_events(self):
        document = chrome_trace(make_tracer(), profiler=make_profiler())
        events = document["traceEvents"]
        host = [e for e in events if e["pid"] == HOST_PID]
        names = {e["name"] for e in host if e["ph"] == "X"}
        assert names == {"build", "simulate", "analyze"}
        process_meta = [e for e in host if e["ph"] == "M" and e["name"] == "process_name"]
        assert process_meta[0]["args"]["name"] == "repro-host"
        # simulated-timeline events keep their own process
        assert any(e["pid"] == TRACE_PID for e in events)

    def test_without_profiler_no_host_process(self):
        document = chrome_trace(make_tracer())
        assert all(e["pid"] == TRACE_PID for e in document["traceEvents"])

    def test_document_is_jsonable(self):
        document = chrome_trace(make_tracer(), profiler=make_profiler())
        assert json.loads(json.dumps(document)) == document


class TestJsonlProfiler:
    def test_phase_records_appended(self):
        lines = [json.loads(line) for line in
                 jsonl_lines(make_tracer(), profiler=make_profiler())]
        phases = [record for record in lines if record["type"] == "phase"]
        assert {record["name"] for record in phases} == {
            "build", "simulate", "analyze"
        }
        analyze = next(r for r in phases if r["name"] == "analyze")
        assert analyze["depth"] == 0
        assert analyze["wall_s"] >= analyze["self_s"]

    def test_without_profiler_no_phase_records(self):
        lines = [json.loads(line) for line in jsonl_lines(make_tracer())]
        assert all(record["type"] != "phase" for record in lines)
