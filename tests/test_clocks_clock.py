"""Tests for derived clocks, clock gating, and the clock tree."""

import pytest

from repro.clocks.clock import DerivedClock, GateableClock
from repro.clocks.crystal import CrystalOscillator
from repro.clocks.tree import ClockBuffer, ClockTree
from repro.errors import ClockError
from repro.power.domain import PowerDomain


class TestDerivedClock:
    def test_divider_scales_period(self):
        xtal = CrystalOscillator("x", 24e6)
        divided = DerivedClock("half", xtal, divider=2)
        assert divided.period_ps == 2 * xtal.period_ps
        assert divided.effective_hz == pytest.approx(xtal.effective_hz / 2)

    def test_divided_edges(self):
        xtal = CrystalOscillator("x", 1e6)
        divided = DerivedClock("div4", xtal, divider=4)
        assert divided.next_edge(1) == 4_000_000
        assert divided.edges_in(0, 9_000_000) == 3  # 0, 4us, 8us

    def test_invalid_divider_rejected(self):
        xtal = CrystalOscillator("x", 1e6)
        with pytest.raises(ClockError):
            DerivedClock("bad", xtal, divider=0)

    def test_source_off_propagates(self):
        xtal = CrystalOscillator("x", 1e6)
        clock = DerivedClock("c", xtal)
        xtal.disable(0)
        assert not clock.available
        with pytest.raises(ClockError):
            clock.next_edge(100)


class TestGateableClock:
    def make(self, watts_per_hz=0.0, component=None):
        xtal = CrystalOscillator("x", 1e6)
        return xtal, GateableClock(
            "g", DerivedClock("c", xtal), watts_per_hz=watts_per_hz, power_component=component
        )

    def test_gating_blocks_edges(self):
        _xtal, clock = self.make()
        clock.gate()
        assert clock.gated
        assert not clock.running
        with pytest.raises(ClockError):
            clock.next_edge(0)
        assert clock.edges_in(0, 10**9) == 0

    def test_ungate_restores(self):
        _xtal, clock = self.make()
        clock.gate()
        clock.ungate()
        assert clock.running
        assert clock.next_edge(1) == 1_000_000

    def test_power_scales_with_frequency(self):
        domain = PowerDomain("d")
        component = domain.new_component("clk")
        _xtal, clock = self.make(watts_per_hz=1e-9, component=component)
        assert component.power_watts == pytest.approx(1e-9 * 1e6)
        clock.gate()
        assert component.power_watts == 0.0

    def test_power_zero_when_source_off(self):
        domain = PowerDomain("d")
        component = domain.new_component("clk")
        xtal, clock = self.make(watts_per_hz=1e-9, component=component)
        xtal.disable(0)
        clock.refresh()
        assert component.power_watts == 0.0


class TestClockTree:
    def test_buffer_power_tracks_crystal(self):
        domain = PowerDomain("d")
        xtal = CrystalOscillator("x", 24e6)
        buffer = ClockBuffer("buf", xtal, domain, watts_per_hz=1e-11, static_watts=1e-4)
        expected = 1e-11 * xtal.effective_hz + 1e-4
        assert buffer.component.power_watts == pytest.approx(expected)
        xtal.disable(0)
        buffer.refresh()
        assert buffer.component.power_watts == 0.0

    def test_tree_bulk_disable(self):
        domain = PowerDomain("d")
        xtal = CrystalOscillator("x", 24e6)
        tree = ClockTree("t")
        tree.add(ClockBuffer("a", xtal, domain, watts_per_hz=1e-11))
        tree.add(ClockBuffer("b", xtal, domain, watts_per_hz=1e-11))
        assert tree.total_power() > 0
        tree.disable_all()
        assert tree.total_power() == 0.0
        tree.enable_all()
        assert tree.total_power() > 0

    def test_duplicate_buffer_rejected(self):
        domain = PowerDomain("d")
        xtal = CrystalOscillator("x", 24e6)
        tree = ClockTree("t")
        tree.add(ClockBuffer("a", xtal, domain, watts_per_hz=0.0))
        with pytest.raises(ClockError):
            tree.add(ClockBuffer("a", xtal, domain, watts_per_hz=0.0))

    def test_unknown_buffer_lookup_rejected(self):
        tree = ClockTree("t")
        with pytest.raises(ClockError):
            tree.buffer("missing")
