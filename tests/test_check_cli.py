"""End-to-end tests of ``python -m repro check`` (via cli.main)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lint.diagnostics import EXIT_CLEAN, EXIT_DIAGNOSTICS, EXIT_USAGE


@pytest.fixture
def clean_module(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text("def run(duration_ps: int) -> int:\n    return duration_ps\n")
    return str(path)


@pytest.fixture
def dirty_module(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(
        "def heat(energy_joules):\n"
        "    return energy_joules\n"
        "def run(idle_power_watts):\n"
        "    total = idle_power_watts + run.window_ps\n"
        "    return heat(idle_power_watts)\n"
    )
    return str(path)


def test_clean_run_exits_zero_and_prints_the_state_space(capsys, clean_module):
    assert main(["check", "--path", clean_module]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "no problems found" in out
    assert "state space [baseline]" in out
    assert "state space [odrips]" in out


def test_findings_exit_one_with_readable_text(capsys, dirty_module):
    assert main(["check", "--path", dirty_module]) == EXIT_DIAGNOSTICS
    out = capsys.readouterr().out
    assert "C401" in out and "C403" in out
    assert "dirty.py" in out


def test_json_output_carries_the_state_space_summary(capsys, dirty_module):
    assert main(["check", "--json", "--path", dirty_module]) == EXIT_DIAGNOSTICS
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert {"C401", "C403"} <= {d["rule"] for d in payload["diagnostics"]}
    for label in ("baseline", "odrips"):
        summary = payload["state_space"][label]
        assert summary["states_explored"] > 0
        assert summary["truncated"] is False
        assert summary["diagnostics"] == 0  # the shipped model itself is clean
        assert "entry:clock-shutdown" in summary["steps_executed"]


def test_select_narrows_to_the_check_family(capsys, dirty_module):
    code = main(["check", "--json", "--select", "C401", "--path", dirty_module])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_DIAGNOSTICS
    assert {d["rule"] for d in payload["diagnostics"]} == {"C401"}


def test_ignore_suppresses_the_findings(capsys, dirty_module):
    assert main(["check", "--ignore", "C4", "--path", dirty_module]) == EXIT_CLEAN


def test_check_rules_are_valid_select_patterns(capsys, clean_module):
    """Satellite of the shared registry: C-series ids validate like any
    other rule pattern instead of being rejected as unknown."""
    for pattern in ("C101", "C2", "deadlock", "call-unit-mismatch"):
        assert main(["check", "--select", pattern, "--path", clean_module]) == EXIT_CLEAN
    assert main(["lint", "--ignore", "C101", "--path", clean_module]) == EXIT_CLEAN


def test_unknown_rule_is_a_usage_error(capsys, clean_module):
    assert main(["check", "--select", "Z999", "--path", clean_module]) == EXIT_USAGE
    assert "Z999" in capsys.readouterr().err


def test_unknown_invariant_is_a_usage_error(capsys, clean_module):
    code = main(["check", "--invariants", "nope", "--path", clean_module])
    assert code == EXIT_USAGE
    assert "nope" in capsys.readouterr().err


def test_invariant_selection_reaches_the_explorer(capsys, clean_module):
    code = main([
        "check", "--json", "--invariants", "clock-coupling,wake-armed",
        "--path", clean_module,
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_CLEAN
    assert payload["state_space"]["odrips"]["invariants_checked"] == [
        "clock-coupling", "wake-armed",
    ]


def test_nonpositive_max_states_is_a_usage_error(capsys, clean_module):
    assert main(["check", "--max-states", "0", "--path", clean_module]) == EXIT_USAGE


def test_tiny_max_states_truncates_with_a_warning(capsys, clean_module):
    code = main(["check", "--max-states", "3", "--path", clean_module])
    out = capsys.readouterr().out
    assert code == EXIT_DIAGNOSTICS
    assert "C104" in out
    assert "[truncated]" in out


def test_missing_path_is_a_usage_error_not_a_traceback(capsys):
    assert main(["check", "--path", "/does/not/exist.py"]) == EXIT_USAGE


# --- the C5xx effects pass ---------------------------------------------------


@pytest.fixture
def cached_driver_with_wallclock(tmp_path):
    """The acceptance-criterion mutation: a cached driver reads the clock."""
    path = tmp_path / "exp.py"
    path.write_text(
        "import time\n"
        "@experiment_driver('fig9')\n"
        "def drv():\n"
        "    return time.time()\n"
    )
    return str(path)


def test_injected_wallclock_in_a_cached_driver_exits_nonzero(
    capsys, cached_driver_with_wallclock
):
    code = main(["check", "--path", cached_driver_with_wallclock])
    out = capsys.readouterr().out
    assert code == EXIT_DIAGNOSTICS
    assert "C501" in out
    assert "time.time()" in out


def test_no_effects_skips_the_c5xx_pass(capsys, cached_driver_with_wallclock):
    code = main(["check", "--no-effects", "--path", cached_driver_with_wallclock])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN
    assert "effects:" not in out


def test_text_mode_prints_the_effects_summary_line(capsys, clean_module):
    assert main(["check", "--path", clean_module]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "effects: " in out
    assert "parsed 1 file(s) once" in out


def test_json_carries_the_effects_section(capsys, cached_driver_with_wallclock):
    code = main(["check", "--json", "--path", cached_driver_with_wallclock])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_DIAGNOSTICS
    effects = payload["effects"]
    (entry,) = effects["entry_points"]
    assert entry["qualname"] == "drv"
    assert entry["kind"] == "driver"
    assert entry["clean"] is False
    assert entry["effects"][0]["rule"] == "C501"


def test_json_omits_effects_under_no_effects(capsys, clean_module):
    assert main(["check", "--json", "--no-effects", "--path", clean_module]) == EXIT_CLEAN
    payload = json.loads(capsys.readouterr().out)
    assert "effects" not in payload


def test_c5_is_a_valid_select_pattern(capsys, cached_driver_with_wallclock):
    code = main(["check", "--json", "--select", "C5", "--path", cached_driver_with_wallclock])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_DIAGNOSTICS
    assert {d["rule"] for d in payload["diagnostics"]} == {"C501"}


def test_ignore_c5_suppresses_the_effects_findings(capsys, cached_driver_with_wallclock):
    assert main(
        ["check", "--ignore", "C5", "--path", cached_driver_with_wallclock]
    ) == EXIT_CLEAN


def test_the_shipped_tree_checks_clean_end_to_end(capsys):
    """python -m repro check, defaults, over the real package: exit 0."""
    assert main(["check"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "effects:" in out and "0 with undeclared effects" in out


# --- budgets (C6xx) ----------------------------------------------------------


def test_budgets_text_mode_prints_the_derived_figures(capsys, clean_module):
    assert main(["check", "--budgets", "--path", clean_module]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "budgets [baseline]: DRIPS worst exit" in out
    assert "budgets [odrips]: DRIPS worst exit" in out
    assert "break-even" in out
    assert "cycle energy >=" in out


def test_budgets_json_carries_the_validated_section(capsys, clean_module):
    from repro.check.schema import validate_check_payload

    assert main(["check", "--budgets", "--json", "--path", clean_module]) == EXIT_CLEAN
    payload = json.loads(capsys.readouterr().out)
    assert validate_check_payload(payload, expect_budgets=True) == []
    row = payload["budgets"]["odrips"]["deep_states"]["DRIPS"]
    assert row["worst_exit_latency_ps"] <= row["wake_budget_ps"]
    assert row["worst_exit_path"][-1] == "EXIT->ACTIVE"


def test_json_omits_budgets_by_default(capsys, clean_module):
    assert main(["check", "--json", "--path", clean_module]) == EXIT_CLEAN
    payload = json.loads(capsys.readouterr().out)
    assert "budgets" not in payload


def test_c6_is_a_valid_select_pattern(capsys, clean_module):
    assert main(["check", "--select", "C6", "--path", clean_module]) == EXIT_CLEAN


# --- --explain ---------------------------------------------------------------


def test_explain_prints_rule_identity_and_example(capsys):
    assert main(["check", "--explain", "C601"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "C601" in out
    assert "wake-budget-exceeded" in out
    assert "example diagnostic:" in out


def test_explain_accepts_rule_names(capsys):
    assert main(["check", "--explain", "residency-below-break-even"]) == EXIT_CLEAN
    assert "C602" in capsys.readouterr().out


def test_explain_unknown_rule_is_a_usage_error(capsys):
    assert main(["check", "--explain", "Z999"]) == EXIT_USAGE
    assert "Z999" in capsys.readouterr().err


# --- unknown-pattern reporting -----------------------------------------------


def test_every_unknown_pattern_is_reported_at_once(capsys, clean_module):
    code = main(["check", "--select", "Z999,Q888", "--ignore", "X777",
                 "--path", clean_module])
    assert code == EXIT_USAGE
    err = capsys.readouterr().err
    assert "Z999" in err and "Q888" in err and "X777" in err
