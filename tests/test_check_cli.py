"""End-to-end tests of ``python -m repro check`` (via cli.main)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lint.diagnostics import EXIT_CLEAN, EXIT_DIAGNOSTICS, EXIT_USAGE


@pytest.fixture
def clean_module(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text("def run(duration_ps: int) -> int:\n    return duration_ps\n")
    return str(path)


@pytest.fixture
def dirty_module(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(
        "def heat(energy_joules):\n"
        "    return energy_joules\n"
        "def run(idle_power_watts):\n"
        "    total = idle_power_watts + run.window_ps\n"
        "    return heat(idle_power_watts)\n"
    )
    return str(path)


def test_clean_run_exits_zero_and_prints_the_state_space(capsys, clean_module):
    assert main(["check", "--path", clean_module]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "no problems found" in out
    assert "state space [baseline]" in out
    assert "state space [odrips]" in out


def test_findings_exit_one_with_readable_text(capsys, dirty_module):
    assert main(["check", "--path", dirty_module]) == EXIT_DIAGNOSTICS
    out = capsys.readouterr().out
    assert "C401" in out and "C403" in out
    assert "dirty.py" in out


def test_json_output_carries_the_state_space_summary(capsys, dirty_module):
    assert main(["check", "--json", "--path", dirty_module]) == EXIT_DIAGNOSTICS
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert {"C401", "C403"} <= {d["rule"] for d in payload["diagnostics"]}
    for label in ("baseline", "odrips"):
        summary = payload["state_space"][label]
        assert summary["states_explored"] > 0
        assert summary["truncated"] is False
        assert summary["diagnostics"] == 0  # the shipped model itself is clean
        assert "entry:clock-shutdown" in summary["steps_executed"]


def test_select_narrows_to_the_check_family(capsys, dirty_module):
    code = main(["check", "--json", "--select", "C401", "--path", dirty_module])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_DIAGNOSTICS
    assert {d["rule"] for d in payload["diagnostics"]} == {"C401"}


def test_ignore_suppresses_the_findings(capsys, dirty_module):
    assert main(["check", "--ignore", "C4", "--path", dirty_module]) == EXIT_CLEAN


def test_check_rules_are_valid_select_patterns(capsys, clean_module):
    """Satellite of the shared registry: C-series ids validate like any
    other rule pattern instead of being rejected as unknown."""
    for pattern in ("C101", "C2", "deadlock", "call-unit-mismatch"):
        assert main(["check", "--select", pattern, "--path", clean_module]) == EXIT_CLEAN
    assert main(["lint", "--ignore", "C101", "--path", clean_module]) == EXIT_CLEAN


def test_unknown_rule_is_a_usage_error(capsys, clean_module):
    assert main(["check", "--select", "Z999", "--path", clean_module]) == EXIT_USAGE
    assert "Z999" in capsys.readouterr().err


def test_unknown_invariant_is_a_usage_error(capsys, clean_module):
    code = main(["check", "--invariants", "nope", "--path", clean_module])
    assert code == EXIT_USAGE
    assert "nope" in capsys.readouterr().err


def test_invariant_selection_reaches_the_explorer(capsys, clean_module):
    code = main([
        "check", "--json", "--invariants", "clock-coupling,wake-armed",
        "--path", clean_module,
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_CLEAN
    assert payload["state_space"]["odrips"]["invariants_checked"] == [
        "clock-coupling", "wake-armed",
    ]


def test_nonpositive_max_states_is_a_usage_error(capsys, clean_module):
    assert main(["check", "--max-states", "0", "--path", clean_module]) == EXIT_USAGE


def test_tiny_max_states_truncates_with_a_warning(capsys, clean_module):
    code = main(["check", "--max-states", "3", "--path", clean_module])
    out = capsys.readouterr().out
    assert code == EXIT_DIAGNOSTICS
    assert "C104" in out
    assert "[truncated]" in out


def test_missing_path_is_a_usage_error_not_a_traceback(capsys):
    assert main(["check", "--path", "/does/not/exist.py"]) == EXIT_USAGE
