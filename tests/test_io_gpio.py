"""Tests for chipset GPIOs and the 32 kHz input monitor."""

import pytest

from repro.errors import IOError_
from repro.io.gpio import GPIOController, GPIOMonitor
from repro.sim.signals import Signal


class TestAllocation:
    def test_spare_allocation(self):
        gpios = GPIOController("g", total=64, reserved=48)
        assert gpios.spare_available == 16
        index = gpios.allocate_spare("thermal")
        assert index == 48
        assert gpios.allocation(index) == "thermal"
        assert gpios.spare_available == 15

    def test_two_spares_for_the_paper(self):
        """Sec. 5.3: 'We use two of these spare GPIOs'."""
        gpios = GPIOController("g")
        thermal = gpios.allocate_spare("ec-thermal-wake")
        fet = gpios.allocate_spare("fet-gate")
        assert thermal != fet
        assert len(gpios.allocations) == 2

    def test_exhaustion_rejected(self):
        gpios = GPIOController("g", total=2, reserved=1)
        gpios.allocate_spare("a")
        with pytest.raises(IOError_):
            gpios.allocate_spare("b")

    def test_reserved_beyond_total_rejected(self):
        with pytest.raises(IOError_):
            GPIOController("g", total=4, reserved=8)

    def test_drive_and_read(self):
        gpios = GPIOController("g")
        gpios.drive(3, True)
        assert gpios.read(3)
        gpios.drive(3, False)
        assert not gpios.read(3)

    def test_out_of_range_index_rejected(self):
        gpios = GPIOController("g", total=4, reserved=2)
        with pytest.raises(IOError_):
            gpios.drive(4, True)


class TestMonitor:
    def make(self, kernel, slow_clock):
        line = Signal("thermal", initial=False)
        fired = []
        monitor = GPIOMonitor(kernel, slow_clock, line, lambda: fired.append(kernel.now))
        return line, fired, monitor

    def test_detection_on_next_slow_edge(self, kernel, slow_clock):
        line, fired, monitor = self.make(kernel, slow_clock)
        monitor.arm()
        raise_at = 100_000_000  # between slow edges
        kernel.schedule(raise_at, lambda: line.set(True))
        kernel.run()
        assert len(fired) == 1
        assert fired[0] == slow_clock.next_edge(raise_at)

    def test_detection_latency_bounded_by_slow_period(self, kernel, slow_clock):
        """Sec. 5.2: monitoring at 32 kHz costs at most one slow period of
        wake latency (~30.5 us)."""
        line, _fired, monitor = self.make(kernel, slow_clock)
        monitor.arm()
        kernel.schedule(77_777_777, lambda: line.set(True))
        kernel.run()
        assert monitor.detections == 1
        assert monitor.detection_latencies_ps[0] <= slow_clock.period_ps

    def test_disarmed_monitor_ignores(self, kernel, slow_clock):
        line, fired, monitor = self.make(kernel, slow_clock)
        kernel.schedule(100, lambda: line.set(True))
        kernel.run()
        assert fired == []

    def test_glitch_shorter_than_sample_missed(self, kernel, slow_clock):
        """A pulse that rises and falls between slow edges is not seen —
        the physical consequence of slow sampling."""
        line, fired, monitor = self.make(kernel, slow_clock)
        monitor.arm()
        edge = slow_clock.next_edge(1)
        kernel.schedule(edge + 100, lambda: line.set(True))
        kernel.schedule(edge + 200, lambda: line.set(False))
        kernel.run()
        assert fired == []

    def test_disarm_cancels_pending_sample(self, kernel, slow_clock):
        line, fired, monitor = self.make(kernel, slow_clock)
        monitor.arm()
        kernel.schedule(100, lambda: line.set(True))
        kernel.schedule(200, monitor.disarm)
        kernel.run()
        assert fired == []
