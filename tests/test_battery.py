"""Tests for the battery-life estimator."""

import pytest

from repro.analysis.battery import (
    BATTERY_WH,
    BatteryLife,
    life_table,
    saving_to_extra_days,
    standby_life,
)
from repro.errors import ConfigError


class TestBatteryLife:
    def test_hours_and_days(self):
        life = standby_life(0.076, battery_wh=38.0)
        assert life.hours == pytest.approx(500.0)
        assert life.days == pytest.approx(500.0 / 24.0)

    def test_extra_days(self):
        baseline = standby_life(0.0744, 38.0)
        odrips = standby_life(0.0581, 38.0)
        assert odrips.extra_days_vs(baseline) > 5.0

    def test_cross_battery_comparison_rejected(self):
        with pytest.raises(ConfigError):
            standby_life(0.1, 38.0).extra_days_vs(standby_life(0.1, 50.0))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            BatteryLife(0.0, 0.1)
        with pytest.raises(ConfigError):
            BatteryLife(38.0, 0.0)

    def test_battery_classes_sane(self):
        values = list(BATTERY_WH.values())
        assert values == sorted(values)


class TestLifeTable:
    def test_rows_and_baseline_delta(self):
        rows = life_table({"base": 0.080, "better": 0.060}, battery_wh=48.0)
        assert rows[0][0] == "base"
        assert rows[0][3] == pytest.approx(0.0)
        assert rows[1][3] > 0

    def test_explicit_baseline(self):
        rows = life_table(
            {"a": 0.060, "b": 0.080}, battery_wh=48.0, baseline_label="b"
        )
        by_label = {row[0]: row for row in rows}
        assert by_label["a"][3] > 0

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            life_table({})

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ConfigError):
            life_table({"a": 0.1}, baseline_label="missing")


class TestSavingConversion:
    def test_paper_headline_saving(self):
        """The paper's 22% saving buys multiple standby days."""
        extra = saving_to_extra_days(0.0744, 0.22, battery_wh=38.0)
        assert 5.0 < extra < 7.0

    def test_zero_saving_zero_days(self):
        assert saving_to_extra_days(0.075, 0.0) == pytest.approx(0.0)

    def test_invalid_saving_rejected(self):
        with pytest.raises(ConfigError):
            saving_to_extra_days(0.075, 1.0)
