"""Interprocedural unit-dataflow analysis (repro.check.dataflow)."""

from __future__ import annotations

from repro.check.dataflow import UnitDataflow, analyze_sources, unit_of_name


def rules_of(diagnostics):
    return [diag.rule for diag in diagnostics]


# --- unit tagging ------------------------------------------------------------


def test_unit_tags_come_from_snake_case_suffixes():
    assert unit_of_name("flush_latency_ps") == "ps"
    assert unit_of_name("idle_power_watts") == "watts"
    assert unit_of_name("entry_power_w") == "watts"  # _w is canonical watts
    assert unit_of_name("budget_mw") == "milliwatts"  # but _mw is a different scale
    assert unit_of_name("energy_mj") == "millijoules"
    assert unit_of_name("wake_delay_s") == "s"


def test_bare_and_rate_names_carry_no_tag():
    assert unit_of_name("s") is None           # no snake_case suffix
    assert unit_of_name("ps") is None
    assert unit_of_name("elapsed") is None
    assert unit_of_name("bandwidth_bytes_per_s") is None  # a rate, not seconds
    assert unit_of_name(None) is None


# --- C401: call-boundary mismatches ------------------------------------------


def test_positional_argument_unit_mismatch_is_c401():
    diagnostics = analyze_sources({
        "m.py": (
            "def heat(energy_joules):\n"
            "    return energy_joules\n"
            "def run(idle_power_watts):\n"
            "    return heat(idle_power_watts)\n"
        )
    })
    assert rules_of(diagnostics) == ["C401"]
    assert "energy_joules" in diagnostics[0].message
    assert "watts" in diagnostics[0].message


def test_keyword_argument_unit_mismatch_is_c401():
    diagnostics = analyze_sources({
        "m.py": "def f(x):\n    g(budget_ps=x.delay_s)\n"
    })
    assert rules_of(diagnostics) == ["C401"]


def test_matching_units_across_a_call_are_clean():
    diagnostics = analyze_sources({
        "m.py": (
            "def wait(duration_ps):\n"
            "    return duration_ps\n"
            "def run(latency_ps):\n"
            "    return wait(latency_ps)\n"
        )
    })
    assert diagnostics == []


def test_conflicting_overloads_disable_the_call_check():
    """Two same-named defs that disagree on a param's unit -> no verdict."""
    diagnostics = analyze_sources({
        "a.py": "def wait(duration_ps):\n    return duration_ps\n",
        "b.py": "def wait(duration_s):\n    return duration_s\n",
        "c.py": "def run(x_ps):\n    return wait(x_ps)\n",
    })
    assert diagnostics == []


def test_cross_module_call_sites_are_checked():
    """The whole program is one analysis unit: defs and calls may be in
    different files."""
    diagnostics = analyze_sources({
        "defs.py": "def settle(window_ps):\n    return window_ps\n",
        "use.py": "def run(span_s):\n    return settle(span_s)\n",
    })
    assert rules_of(diagnostics) == ["C401"]


# --- C402: return-unit mismatches (the interprocedural fixpoint) -------------


def test_return_unit_propagates_through_the_call_graph():
    """exit_latency_ps -> latency -> edge_wait_s: two hops of inference."""
    diagnostics = analyze_sources({
        "m.py": (
            "def edge_wait_s():\n"
            "    return 1.5\n"
            "def latency():\n"
            "    return edge_wait_s()\n"
            "def exit_latency_ps():\n"
            "    return latency()\n"
        )
    })
    assert rules_of(diagnostics) == ["C402"]
    assert "exit_latency_ps" in diagnostics[0].message


def test_sanitizers_preserve_the_unit_tag():
    diagnostics = analyze_sources({
        "m.py": (
            "def wake_s():\n"
            "    return 2.0\n"
            "def budget_ps():\n"
            "    return round(wake_s())\n"
        )
    })
    assert rules_of(diagnostics) == ["C402"]


def test_division_launders_the_tag():
    """Unit conversions are mult/div expressions; they must stay silent."""
    diagnostics = analyze_sources({
        "m.py": (
            "def last_entry_s(latency_ps):\n"
            "    return latency_ps / 1e12\n"
        )
    })
    assert diagnostics == []


def test_generators_are_exempt_from_return_checks():
    diagnostics = analyze_sources({
        "m.py": (
            "def steps_ps(delay_s):\n"
            "    yield delay_s\n"
            "    return\n"
        )
    })
    assert diagnostics == []


# --- C403: additive mixes ----------------------------------------------------


def test_adding_ps_to_seconds_is_c403():
    diagnostics = analyze_sources({
        "m.py": "def f(x):\n    return x.entry_latency_ps + x.exit_latency_s\n"
    })
    assert rules_of(diagnostics) == ["C403"]


def test_subtracting_same_units_is_clean():
    diagnostics = analyze_sources({
        "m.py": "def f(x):\n    return x.end_ps - x.start_ps\n"
    })
    assert diagnostics == []


def test_unitless_offsets_are_allowed():
    diagnostics = analyze_sources({
        "m.py": "def f(x, slack):\n    return x.deadline_ps + slack\n"
    })
    assert diagnostics == []


def test_milliwatts_plus_watts_is_c403():
    diagnostics = analyze_sources({
        "m.py": "def f(x):\n    return x.soc_power_mw + x.board_power_watts\n"
    })
    assert rules_of(diagnostics) == ["C403"]


# --- pragma compatibility ----------------------------------------------------


def test_allow_pragma_suppresses_a_dataflow_finding():
    diagnostics = analyze_sources({
        "m.py": (
            "def f(x):\n"
            "    return x.a_ps + x.b_s  # lint: allow(C403)\n"
        )
    })
    assert diagnostics == []


def test_pragma_on_a_continuation_line_suppresses_too():
    diagnostics = analyze_sources({
        "m.py": (
            "def f(x):\n"
            "    return (x.a_ps\n"
            "            + x.b_s)  # lint: allow(C403)\n"
        )
    })
    assert diagnostics == []


def test_pragma_for_a_different_rule_does_not_suppress():
    diagnostics = analyze_sources({
        "m.py": "def f(x):\n    return x.a_ps + x.b_s  # lint: allow(C401)\n"
    })
    assert rules_of(diagnostics) == ["C403"]


# --- robustness --------------------------------------------------------------


def test_syntax_errors_are_skipped_not_raised():
    diagnostics = analyze_sources({"bad.py": "def f(:\n", "ok.py": "x = 1\n"})
    assert diagnostics == []


def test_fixpoint_terminates_on_recursion():
    flow = UnitDataflow()
    flow.add_source(
        "def a():\n    return b()\ndef b():\n    return a()\n", "m.py"
    )
    flow.solve()
    assert flow.check() == []
