"""Tests for the non-volatile memory devices (PCM, eMRAM)."""

import pytest

from repro.errors import MemoryFault
from repro.memory.nvm import EMRAMDevice, NVMDevice, PCMDevice
from repro.power.domain import PowerDomain
from repro.units import GIB


class TestNonVolatility:
    def test_data_survives_power_cycle(self):
        pcm = PCMDevice(capacity_bytes=1 << 20)
        pcm.write(100, b"persist")
        pcm.power_off()
        pcm.power_on()
        data, _ = pcm.read(100, 7)
        assert data == b"persist"

    def test_access_while_off_rejected(self):
        emram = EMRAMDevice()
        emram.power_off()
        with pytest.raises(MemoryFault):
            emram.read(0, 1)
        with pytest.raises(MemoryFault):
            emram.write(0, b"x")

    def test_zero_standby_power(self):
        """Non-volatility is the point: no refresh, no retention supply."""
        domain = PowerDomain("d")
        pcm = PCMDevice(capacity_bytes=1 << 20, power_component=domain.new_component("pcm"))
        assert domain.components[0].power_watts == 0.0


class TestAsymmetry:
    def test_pcm_writes_slower_than_reads(self):
        pcm = PCMDevice(capacity_bytes=1 << 20)
        write_latency = pcm.write(0, bytes(64 * 1024))
        _, read_latency = pcm.read(0, 64 * 1024)
        assert write_latency > read_latency

    def test_pcm_writes_cost_more_energy(self):
        pcm = PCMDevice(capacity_bytes=1 << 20)
        assert pcm.write_energy_pj_per_byte > pcm.read_energy_pj_per_byte

    def test_emram_faster_than_pcm(self):
        """Sec. 8.3 assumes an optimistic, SRAM-comparable eMRAM."""
        pcm = PCMDevice(capacity_bytes=1 << 20)
        emram = EMRAMDevice(capacity_bytes=1 << 20)
        blob = bytes(16 * 1024)
        assert emram.write(0, blob) < pcm.write(0, blob)


class TestEndurance:
    def test_wear_counted_per_region(self):
        device = NVMDevice(
            "nvm", 1 << 20, 1e9, 1e9, 1.0, 1.0, 0, 0, endurance_cycles=3
        )
        for _ in range(3):
            device.write(0, b"x")
        assert device.max_writes_per_region == 3
        with pytest.raises(MemoryFault):
            device.write(0, b"x")

    def test_wear_level_report(self):
        device = NVMDevice("nvm", 1 << 20, 1e9, 1e9, 1.0, 1.0, 0, 0)
        device.write(0, b"x")
        device.write(8192, b"y")
        report = device.wear_level_report()
        assert report == {0: 1, 2: 1}

    def test_emram_unlimited_endurance(self):
        """The optimistic eMRAM of Sec. 8.3: endurance comparable to SRAM."""
        emram = EMRAMDevice(capacity_bytes=4096)
        assert emram.endurance_cycles is None

    def test_pcm_endurance_finite(self):
        pcm = PCMDevice(capacity_bytes=1 << 20)
        assert pcm.endurance_cycles == 100_000_000

    def test_tracking_counts_all_touched_regions(self):
        device = NVMDevice("nvm", 1 << 20, 1e9, 1e9, 1.0, 1.0, 0, 0)
        device.write(4000, bytes(500))  # spans regions 0 and 1
        assert device.wear_level_report() == {0: 1, 1: 1}
