"""Edge cases of the ``lint: allow`` suppression pragma.

The pragma is shared by the source checker (``repro lint``) and the
unit-dataflow pass (``repro check``); these tests pin down its exact
semantics: per-line, per-rule, continuation-line aware, and noisy about
rule ids that do not exist (S407).
"""

from __future__ import annotations

from repro.lint import lint_source_text


def rules_of(diagnostics):
    return [diag.rule for diag in diagnostics]


WALLCLOCK = "import time\nt = time.time()"


def test_single_rule_pragma_suppresses_exactly_that_rule():
    clean = lint_source_text(
        "import time\nt = time.time()  # lint: allow(S401)\n"
    )
    assert clean == []


def test_multiple_rules_on_one_line_all_apply():
    source = (
        "import time\n"
        "start_ps = time.time() * 1.5  # lint: allow(S401, S402)\n"
    )
    assert lint_source_text(source) == []


def test_partial_pragma_leaves_the_other_finding():
    source = (
        "import time\n"
        "start_ps = time.time() * 1.5  # lint: allow(S401)\n"
    )
    assert rules_of(lint_source_text(source)) == ["S402"]


def test_unknown_rule_name_in_pragma_is_s407():
    source = "import time\nt = time.time()  # lint: allow(S401, S999)\n"
    diagnostics = lint_source_text(source)
    assert rules_of(diagnostics) == ["S407"]
    assert "S999" in diagnostics[0].message
    assert diagnostics[0].location.line == 2


def test_typoed_pragma_suppresses_nothing():
    source = "import time\nt = time.time()  # lint: allow(S402)\n"
    assert rules_of(lint_source_text(source)) == ["S401"]


def test_s407_is_itself_suppressible():
    source = "x = 1  # lint: allow(BOGUS, S407)\n"
    assert lint_source_text(source) == []


def test_pragma_on_a_continuation_line_covers_the_statement():
    """A finding reports at the statement's first line; the pragma may sit
    on any physical line of the same (simple) statement."""
    source = (
        "def f(get):\n"
        "    start_ps = (get()\n"
        "                * 1.5)  # lint: allow(S402)\n"
    )
    assert lint_source_text(source) == []


def test_pragma_on_the_first_line_covers_continuation_findings():
    source = (
        "def f(get):\n"
        "    start_ps = (  # lint: allow(S402)\n"
        "        get() * 1.5)\n"
    )
    assert lint_source_text(source) == []


def test_pragma_inside_a_function_does_not_blanket_the_function():
    """Compound statements must not spread a body pragma over their whole
    span — only the simple statement carrying it is covered."""
    source = (
        "import time\n"
        "def f():\n"
        "    a = time.time()  # lint: allow(S401)\n"
        "    b = time.time()\n"
    )
    diagnostics = lint_source_text(source)
    assert rules_of(diagnostics) == ["S401"]
    assert diagnostics[0].location.line == 4


# --- def/class header spreading (decorators + signature as one span) ---------


def test_pragma_on_the_def_line_covers_a_signature_finding():
    """S404 reports at the default argument's line; a pragma anywhere in
    the header span (decorators through signature) must cover it."""
    source = (
        "@decorate\n"
        "def f(  # lint: allow(S404)\n"
        "    xs=[],\n"
        "):\n"
        "    return xs\n"
    )
    assert lint_source_text(source) == []


def test_pragma_on_a_decorator_line_covers_the_def():
    source = (
        "@decorate  # lint: allow(S406)\n"
        "def total_ps(n) -> float:\n"
        "    return n\n"
    )
    assert lint_source_text(source) == []


def test_def_line_pragma_covers_stacked_decorators():
    source = (
        "@outer\n"
        "@inner(arg=[])\n"
        "def f(xs=[]):  # lint: allow(S404)\n"
        "    return xs\n"
    )
    assert lint_source_text(source) == []


def test_header_pragma_never_blankets_the_body():
    source = (
        "import time\n"
        "@decorate\n"
        "def f(xs=[]):  # lint: allow(S404, S401)\n"
        "    return time.time()\n"
    )
    diagnostics = lint_source_text(source)
    assert rules_of(diagnostics) == ["S401"]
    assert diagnostics[0].location.line == 4


def test_body_pragma_never_reaches_the_header():
    source = (
        "@decorate\n"
        "def f(xs=[]):\n"
        "    return xs  # lint: allow(S404)\n"
    )
    # S404 fires at the signature; a body pragma must not cover it
    # (and names a real rule, so no S407).
    assert rules_of(lint_source_text(source)) == ["S404"]
