"""Tests for the shared diagnostics framework (repro.lint.diagnostics)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.lint import all_rules
from repro.lint.diagnostics import (
    EXIT_CLEAN,
    EXIT_DIAGNOSTICS,
    JSON_SCHEMA_VERSION,
    Diagnostic,
    Location,
    Severity,
    count_by_severity,
    dedupe_diagnostics,
    exit_code,
    filter_diagnostics,
    render_json,
    render_text,
    sort_diagnostics,
    validate_rule_patterns,
)


def make(rule="M101", name="orphan-component", severity=Severity.ERROR,
         message="m", file=None, line=None, obj="component x", hint=None):
    return Diagnostic(rule, name, severity, message,
                      Location(file=file, line=line, obj=obj), hint)


class TestLocation:
    def test_file_line_render(self):
        assert Location(file="a.py", line=3).render() == "a.py:3"

    def test_object_render(self):
        assert Location(obj="rail compute").render() == "rail compute"

    def test_unknown_render(self):
        assert Location().render() == "<unknown>"


class TestFiltering:
    def test_select_by_prefix(self):
        diags = [make(rule="M101"), make(rule="M201"), make(rule="S403")]
        kept = filter_diagnostics(diags, select=["M1"])
        assert [d.rule for d in kept] == ["M101"]

    def test_select_by_name(self):
        diags = [make(rule="M101", name="orphan-component"),
                 make(rule="S403", name="float-eq-power")]
        kept = filter_diagnostics(diags, select=["float-eq-power"])
        assert [d.rule for d in kept] == ["S403"]

    def test_ignore_wins_over_select(self):
        diags = [make(rule="M101"), make(rule="M102", name="domain-without-rail")]
        kept = filter_diagnostics(diags, select=["M1"], ignore=["M102"])
        assert [d.rule for d in kept] == ["M101"]

    def test_no_filters_keeps_everything(self):
        diags = [make(rule="M101"), make(rule="S403")]
        assert filter_diagnostics(diags) == diags

    def test_validate_rejects_unknown_pattern(self):
        with pytest.raises(ConfigError):
            validate_rule_patterns(["Z999"], all_rules())

    def test_validate_accepts_prefixes_and_names(self):
        validate_rule_patterns(["M1", "M305", "float-eq-power", "S"], all_rules())

    def test_validate_reports_every_unknown_pattern_at_once(self):
        with pytest.raises(ConfigError) as excinfo:
            validate_rule_patterns(["Z999", "M1", "Q888"], all_rules())
        message = str(excinfo.value)
        assert "Z999" in message and "Q888" in message
        assert "M1" not in message

    def test_validate_accepts_the_budget_family(self):
        validate_rule_patterns(["C6", "C601", "wake-budget-exceeded"], all_rules())


class TestOrderingAndDedupe:
    def test_sorted_by_location_then_rule(self):
        diags = [
            make(rule="S403", file="b.py", line=9, obj=None),
            make(rule="S401", file="a.py", line=2, obj=None),
            make(rule="S402", file="a.py", line=1, obj=None),
        ]
        ordered = sort_diagnostics(diags)
        assert [(d.location.file, d.location.line) for d in ordered] == [
            ("a.py", 1), ("a.py", 2), ("b.py", 9)
        ]

    def test_dedupe_removes_exact_repeats(self):
        one = make(message="same", obj="gate g")
        two = make(message="same", obj="gate g")
        other = make(message="different", obj="gate g")
        assert dedupe_diagnostics([one, two, other]) == [one, other]


class TestRenderers:
    def test_text_mentions_rule_and_hint(self):
        text = render_text([make(hint="do the thing")])
        assert "M101" in text and "orphan-component" in text
        assert "hint: do the thing" in text
        assert "1 problem(s)" in text

    def test_text_clean(self):
        assert render_text([]) == "no problems found"

    def test_json_schema_stability(self):
        """The --json schema is a contract: top-level keys, diagnostic
        keys and location keys must not drift."""
        payload = json.loads(render_json([make(file="a.py", line=4, obj=None,
                                               hint="h")]))
        assert set(payload) == {"version", "counts", "diagnostics"}
        assert payload["version"] == JSON_SCHEMA_VERSION
        assert set(payload["counts"]) == {"error", "warning"}
        (diag,) = payload["diagnostics"]
        assert set(diag) == {"rule", "name", "severity", "message", "location", "hint"}
        assert set(diag["location"]) == {"file", "line", "object"}
        assert diag["severity"] == "error"
        assert diag["location"] == {"file": "a.py", "line": 4, "object": None}

    def test_json_empty_tree(self):
        payload = json.loads(render_json([]))
        assert payload["diagnostics"] == []
        assert payload["counts"] == {"error": 0, "warning": 0}

    def test_count_by_severity(self):
        counts = count_by_severity(
            [make(), make(severity=Severity.WARNING, rule="S405", name="unit-suffix")]
        )
        assert counts == {"error": 1, "warning": 1}


class TestExitCodes:
    def test_clean_exit(self):
        assert exit_code([]) == EXIT_CLEAN == 0

    def test_diagnostics_exit(self):
        assert exit_code([make()]) == EXIT_DIAGNOSTICS == 1


class TestRuleCatalog:
    def test_rule_ids_unique(self):
        rules = all_rules()
        ids = [rule_id for rule_id, _ in rules]
        assert len(ids) == len(set(ids))
        names = [name for _, name in rules]
        assert len(names) == len(set(names))

    def test_catalog_families_present(self):
        ids = {rule_id for rule_id, _ in all_rules()}
        assert any(i.startswith("M1") for i in ids)
        assert any(i.startswith("M2") for i in ids)
        assert any(i.startswith("M3") for i in ids)
        assert any(i.startswith("S4") for i in ids)
