"""Tests for the priced-timed budget analysis (repro.check.budgets, C6xx).

The non-vacuity tests follow the single-step mutation discipline of the
other rule families: each C6xx rule gets one seeded mutation — a probe
price or a declaration field perturbed by one value — and the test
asserts the rule fires on the mutant and stays silent on the seed.
Probes run the real simulator once per configuration (module-scoped);
every mutation analyzes injected copies, so the suite prices two cycles
total no matter how many rules it exercises.
"""

from __future__ import annotations

import copy
from fractions import Fraction

import pytest

from repro.check.budgets import (
    analyze_budgets,
    derive_technique_break_even,
    probe_standby_cycle,
)
from repro.check.ts import compile_transition_system
from repro.core.techniques import TechniqueSet
from repro.lint.model import walk_model
from repro.system.skylake import SkylakePlatform


@pytest.fixture(scope="module")
def odrips_view_ts():
    platform = SkylakePlatform(techniques=TechniqueSet.odrips())
    view = walk_model(platform)
    ts, diagnostics = compile_transition_system(view)
    assert ts is not None and not diagnostics
    return view, ts


@pytest.fixture(scope="module")
def probes():
    return {
        "self": probe_standby_cycle(techniques=TechniqueSet.odrips()),
        "baseline": probe_standby_cycle(techniques=TechniqueSet.baseline()),
    }


def _mutant(probes, view):
    """Deep copies safe to perturb without poisoning the module fixtures."""
    return copy.deepcopy(probes), copy.deepcopy(view.budgets)


def _analyze(view, ts, probes, budgets=...):
    mutated = copy.copy(view)
    if budgets is not ...:
        mutated.budgets = budgets
    return analyze_budgets(mutated, ts, probes=probes)


def _rules(diagnostics):
    return sorted({diag.rule for diag in diagnostics})


# --- the seed is clean -------------------------------------------------------


def test_seed_platform_is_clean(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    summary, diagnostics = analyze_budgets(view, ts, probes=probes)
    assert diagnostics == []
    row = summary["deep_states"]["DRIPS"]
    assert row["worst_exit_latency_ps"] <= row["wake_budget_ps"]
    assert row["break_even_s"] is not None
    assert row["break_even_vs"] == "baseline"
    assert summary["cycle"]["energy_lower_bound_j"] <= summary["cycle"]["golden_limit_j"]


def test_summary_derives_numbers_for_every_deep_state(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    summary, _ = analyze_budgets(view, ts, probes=probes)
    for state in ts.idle_states:
        row = summary["deep_states"][state]
        assert row["worst_exit_latency_ps"] > 0
        assert row["worst_entry_latency_ps"] > 0
        assert row["worst_exit_path"][0].startswith("exit:")
        assert row["worst_exit_path"][-1] == "EXIT->ACTIVE"
        assert row["break_even_s"] > 0
    # the shallow ladder is derived alongside
    assert set(summary["ladder"]) == {"C2", "C6", "C8"}
    for row in summary["ladder"].values():
        assert row["break_even_s"] > 0


def test_probe_prices_are_physical(probes):
    for probe in probes.values():
        assert probe["entry_latency_ps"] > 0
        assert probe["exit_latency_ps"] > 0
        assert probe["entry_energy_j"] > 0
        assert probe["exit_energy_j"] > 0
        assert probe["active_power_w"] > probe["drips_power_w"] > 0
        assert any(
            label.startswith("exit:") and entry["latency_ps"] > 0
            for label, entry in probe["steps"].items()
        )


# --- single-step mutations: each rule is non-vacuous -------------------------


def test_c601_fires_on_inflated_exit_step(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    mutated_probes, _ = _mutant(probes, view)
    mutated_probes["self"]["steps"]["exit:io-restore"]["latency_ps"] += 1_000_000_000
    _, diagnostics = _analyze(view, ts, mutated_probes)
    c601 = [diag for diag in diagnostics if diag.rule == "C601"]
    assert c601, _rules(diagnostics)
    # the witness path must route through the inflated step
    assert "exit:io-restore" in (c601[0].hint or "")


def test_c602_fires_on_residency_below_break_even(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    _, budgets = _mutant(probes, view)
    budgets["deep_states"]["DRIPS"]["residency_guarantee_s"] = 0.001
    _, diagnostics = _analyze(view, ts, probes, budgets=budgets)
    assert "C602" in _rules(diagnostics)


def test_c603_fires_on_drifted_declared_break_even(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    _, budgets = _mutant(probes, view)
    budgets["deep_states"]["DRIPS"]["break_even_s"] = 0.020
    _, diagnostics = _analyze(view, ts, probes, budgets=budgets)
    assert "C603" in _rules(diagnostics)


def test_c604_fires_without_declaration(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    _, diagnostics = _analyze(view, ts, probes, budgets=None)
    c604 = [diag for diag in diagnostics if diag.rule == "C604"]
    assert {diag.location.obj for diag in c604} >= set(ts.idle_states)


def test_c604_fires_on_missing_deep_state_entry(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    _, budgets = _mutant(probes, view)
    del budgets["deep_states"]["DRIPS"]
    _, diagnostics = _analyze(view, ts, probes, budgets=budgets)
    assert "C604" in _rules(diagnostics)


def test_c604_fires_on_unparseable_entry(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    _, budgets = _mutant(probes, view)
    budgets["deep_states"]["DRIPS"]["wake_budget_ps"] = "soon"
    _, diagnostics = _analyze(view, ts, probes, budgets=budgets)
    assert "C604" in _rules(diagnostics)


def test_c605_fires_on_inflated_drips_power(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    mutated_probes, _ = _mutant(probes, view)
    mutated_probes["self"]["drips_power_w"] = Fraction(1)
    # keep the baseline above the mutant so the break-even stays defined
    mutated_probes["baseline"]["drips_power_w"] = Fraction(2)
    _, diagnostics = _analyze(view, ts, mutated_probes)
    assert "C605" in _rules(diagnostics)


# --- worst-case vs the declaration ------------------------------------------


def test_worst_exit_includes_slow_clock_allowance(odrips_view_ts, probes):
    """The worst-case path covers every 32 kHz wake phase, not just the
    one the probe happened to sample: the derived figure must exceed the
    probed one by at least the declared xtal-restart allowance."""
    view, ts = odrips_view_ts
    summary, _ = analyze_budgets(view, ts, probes=probes)
    allowance = view.budgets["chipset"]["step_allowances_ps"]["exit:xtal-restart"]
    probed = probes["self"]["exit_latency_ps"]
    worst = summary["deep_states"]["DRIPS"]["worst_exit_latency_ps"]
    assert worst >= probed + allowance


# --- differential: static derivation vs dynamic sweep ------------------------


def test_static_break_even_matches_dynamic_sweep(probes):
    """The priced-timed derivation and the simulator's two-point sweep
    model the same fixed-period cycle; they must agree within the
    declared differential tolerance on the seed platform."""
    from repro.analysis.breakeven import find_break_even
    from repro.system.budget import DIFFERENTIAL_TOLERANCE

    static = float(derive_technique_break_even(probes["self"], probes["baseline"]))
    dynamic = find_break_even(TechniqueSet.odrips()).break_even_s
    assert dynamic > 0
    assert abs(static - dynamic) / dynamic <= DIFFERENTIAL_TOLERANCE


def test_derived_break_even_matches_paper_constant(odrips_view_ts, probes):
    view, ts = odrips_view_ts
    summary, _ = analyze_budgets(view, ts, probes=probes)
    row = summary["deep_states"]["DRIPS"]
    declared = row["declared_break_even_s"]
    assert declared == pytest.approx(6.5e-3)
    drift = abs(row["break_even_s"] - declared) / declared
    assert drift <= view.budgets["deep_states"]["DRIPS"]["break_even_tolerance"]


# --- report plumbing ---------------------------------------------------------


def test_check_standby_model_budgets_flag():
    from repro.check import check_standby_model
    from repro.perf.cache import SimulationCache

    cache = SimulationCache()
    plain = check_standby_model(cache=cache)
    assert plain.budgets is None
    priced = check_standby_model(cache=cache, budgets=True)
    assert priced.budgets is not None
    assert "DRIPS" in priced.budgets["deep_states"]
    # distinct cache keys: the flag changes the report shape
    assert cache.stats.hits == 0
    again = check_standby_model(cache=cache, budgets=True)
    assert again is priced and cache.stats.hits == 1
