"""Tests for the embedded controller's thermal model."""

import pytest

from repro.io.ec import EmbeddedController
from repro.units import SECOND


class TestThermalModel:
    def test_starts_at_ambient(self, kernel):
        ec = EmbeddedController(kernel, ambient_celsius=30.0)
        assert ec.temperature_celsius == pytest.approx(30.0)

    def test_settles_toward_power_target(self, kernel):
        ec = EmbeddedController(kernel, ambient_celsius=30.0, celsius_per_watt=8.0,
                                time_constant_s=10.0)
        ec.observe_power(0, 1.0)  # 1 W -> target 38 C
        ec.observe_power(100 * SECOND, 1.0)
        assert ec.temperature_celsius == pytest.approx(38.0, abs=0.1)

    def test_idle_platform_stays_cool(self, kernel):
        ec = EmbeddedController(kernel, trip_celsius=45.0)
        ec.observe_power(0, 0.060)  # DRIPS-level power
        ec.observe_power(1000 * SECOND, 0.060)
        assert ec.temperature_celsius < 32.0
        assert ec.trip_count == 0

    def test_trip_on_sustained_load(self, kernel):
        ec = EmbeddedController(kernel, trip_celsius=45.0, celsius_per_watt=8.0)
        ec.observe_power(0, 3.0)  # target 54 C
        ec.observe_power(200 * SECOND, 3.0)
        assert ec.trip_count == 1
        assert bool(ec.thermal_line)

    def test_hysteresis_on_cooldown(self, kernel):
        ec = EmbeddedController(kernel, trip_celsius=45.0, celsius_per_watt=8.0,
                                time_constant_s=10.0)
        ec.observe_power(0, 3.0)
        ec.observe_power(200 * SECOND, 0.06)  # tripped, now cooling
        assert bool(ec.thermal_line)
        ec.observe_power(400 * SECOND, 0.06)
        assert not bool(ec.thermal_line)  # dropped below trip - 2 C

    def test_force_thermal_event(self, kernel):
        ec = EmbeddedController(kernel)
        ec.force_thermal_event()
        assert bool(ec.thermal_line)
        ec.clear()
        assert not bool(ec.thermal_line)
