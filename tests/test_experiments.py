"""Paper-vs-measured checks for the experiment drivers.

These are the headline reproduction assertions: each figure's measured
numbers must land within a stated tolerance of the paper's published
numbers.  Tolerances are deliberately loose enough to absorb simulation
phase noise but tight enough that a broken technique fails loudly.
"""

import pytest

from repro.core.experiments import (
    fig1b_breakdown,
    fig2_connected_standby,
    fig6a_techniques,
    fig6b_core_frequency,
    fig6c_dram_frequency,
    fig6d_emerging_memories,
    sec413_calibration,
    sec63_context_latency,
    table1_parameters,
)


class TestFig1b:
    def test_shares_match_paper(self):
        result = fig1b_breakdown()
        assert result.platform_drips_mw == pytest.approx(60.0, abs=0.5)
        assert result.wakeup_and_crystal == pytest.approx(0.05, abs=0.01)
        assert result.shares["aon_ios"] == pytest.approx(0.07, abs=0.01)
        assert result.shares["sr_srams"] == pytest.approx(0.09, abs=0.01)
        assert result.processor_total == pytest.approx(0.18, abs=0.01)

    def test_shares_are_fractions(self):
        result = fig1b_breakdown()
        assert sum(result.shares.values()) == pytest.approx(1.0)


class TestFig2:
    def test_connected_standby_picture(self):
        result = fig2_connected_standby(cycles=1)
        assert result.drips_power_mw == pytest.approx(60.0, abs=1.0)
        assert result.active_power_w == pytest.approx(3.0, abs=0.2)
        assert result.drips_residency == pytest.approx(0.995, abs=0.002)
        assert 70.0 < result.average_power_mw < 80.0


class TestFig6a:
    def test_savings_match_paper(self):
        result = fig6a_techniques(cycles=1)
        for row in result.rows:
            assert row.saving == pytest.approx(row.paper_saving, abs=0.015), row.label

    def test_odrips_is_best(self):
        result = fig6a_techniques(cycles=1)
        savings = {row.label: row.saving for row in result.rows}
        assert savings["ODRIPS"] == max(savings.values())

    def test_io_gating_builds_on_wake_up_off(self):
        result = fig6a_techniques(cycles=1)
        savings = {row.label: row.saving for row in result.rows}
        assert savings["AON-IO-GATE"] > savings["WAKE-UP-OFF"]


class TestFig6b:
    def test_frequency_sweep_shape(self):
        rows = fig6b_core_frequency(cycles=1)
        deltas = {row.parameter: row.delta_vs_reference for row in rows}
        # 1.0 GHz saves a little, 1.5 GHz costs a little (Fig. 6(b))
        assert -0.025 < deltas[1.0] < -0.005
        assert 0.004 < deltas[1.5] < 0.025

    def test_optimum_between_08_and_15(self):
        """Paper conclusion: the best frequency is strictly inside the
        sweep range."""
        rows = fig6b_core_frequency(frequencies_ghz=(0.8, 1.0, 1.5), cycles=1)
        powers = [row.average_power_mw for row in rows]
        assert powers[1] < powers[0]
        assert powers[2] > powers[1]


class TestFig6c:
    def test_dram_sweep_shape(self):
        rows = fig6c_dram_frequency(cycles=1)
        deltas = {row.parameter: row.delta_vs_reference for row in rows}
        assert -0.009 < deltas[1.067e9] < -0.001
        assert -0.012 < deltas[0.8e9] < -0.004
        assert deltas[0.8e9] < deltas[1.067e9]


class TestFig6d:
    def test_emerging_memory_savings(self):
        rows = fig6d_emerging_memories(cycles=1)
        savings = {row.label: row.saving_vs_baseline for row in rows}
        assert savings["ODRIPS-PCM"] == pytest.approx(0.37, abs=0.025)
        # MRAM at worst equal to ODRIPS, never worse
        assert savings["ODRIPS-MRAM"] >= savings["ODRIPS"] - 0.002

    def test_pcm_is_best_overall(self):
        rows = fig6d_emerging_memories(cycles=1)
        best = max(rows, key=lambda row: row.saving_vs_baseline)
        assert best.label == "ODRIPS-PCM"


class TestSec63:
    def test_context_latency_scale(self):
        result = sec63_context_latency()
        assert result.save_us == pytest.approx(18.0, rel=0.25)
        assert result.restore_us == pytest.approx(13.0, rel=0.35)
        assert result.save_us > result.restore_us

    def test_region_fraction_below_paper_bound(self):
        """Sec. 6.3: 200 KB is <0.3% of the 64 MB SGX region."""
        result = sec63_context_latency()
        assert result.sgx_region_fraction < 0.0032


class TestSec413:
    def test_register_sizing(self):
        result = sec413_calibration()
        assert result.integer_bits == result.paper_integer_bits == 10
        assert result.fractional_bits == result.paper_fractional_bits == 21
        assert result.worst_case_drift_ppb < 1.0


class TestTable1:
    def test_rows_present(self):
        rows = table1_parameters()
        assert "Skylake" in rows["Processor (target)"][0]
        assert "Haswell" in rows["Processor (baseline)"][0]
        assert rows["TDP"][0] == "15 W"
        assert "DDR3L" in rows["Memory"][0]
