"""Tests for the processor PMU."""

import pytest

from repro.errors import FlowError
from repro.power.domain import PowerDomain
from repro.processor.cstates import CState
from repro.processor.pmu import ProcessorPMU
from repro.units import ms_to_ps, us_to_ps


@pytest.fixture
def pmu(kernel, fast_clock):
    domain = PowerDomain("pmu")
    return ProcessorPMU(
        kernel,
        fast_clock,
        component=domain.new_component("pmu"),
        drips_power_watts=0.42e-3,
        deep_power_watts=0.12e-3,
    )


class TestModes:
    def test_mode_power_levels(self, pmu):
        pmu.set_mode(ProcessorPMU.MODE_DRIPS)
        assert pmu.component.power_watts == pytest.approx(0.42e-3)
        pmu.set_mode(ProcessorPMU.MODE_DEEP)
        assert pmu.component.power_watts == pytest.approx(0.12e-3)
        pmu.set_mode(ProcessorPMU.MODE_ACTIVE)
        assert pmu.component.power_watts == 0.0

    def test_unknown_mode_rejected(self, pmu):
        with pytest.raises(FlowError):
            pmu.set_mode("bogus")


class TestIdleStateSelection:
    def test_deep_sleep_for_long_idle(self, pmu):
        state = pmu.select_idle_state(ltr_ps=ms_to_ps(10), tnte_ps=ms_to_ps(30_000))
        assert state is CState.C10

    def test_tight_ltr_limits_depth(self, pmu):
        """LTR says the device cannot tolerate a slow wake."""
        state = pmu.select_idle_state(ltr_ps=us_to_ps(60), tnte_ps=ms_to_ps(30_000))
        assert state is CState.C6

    def test_imminent_timer_limits_depth(self, pmu):
        """TNTE says a wake is coming soon: don't pay deep entry cost."""
        state = pmu.select_idle_state(ltr_ps=ms_to_ps(10), tnte_ps=us_to_ps(150))
        assert state is CState.C6

    def test_very_tight_constraints_stay_active(self, pmu):
        state = pmu.select_idle_state(ltr_ps=0, tnte_ps=0)
        assert state is CState.C0

    def test_deeper_states_with_looser_constraints(self, pmu):
        depths = [
            pmu.select_idle_state(us_to_ps(ltr_us), ms_to_ps(1000))
            for ltr_us in (1, 10, 60, 150, 400)
        ]
        values = [int(state) for state in depths]
        assert values == sorted(values)


class TestWakeMonitoring:
    def test_baseline_monitor_fires_at_target(self, pmu, kernel, fast_clock):
        fired = []
        pmu.set_wake_callback(lambda target: fired.append((kernel.now, target)))
        pmu.schedule_timer_event(2400)
        wake_ps = pmu.arm_baseline_monitor()
        kernel.run()
        assert fired == [(wake_ps, 2400)]
        assert pmu.tsc.read(wake_ps) >= 2400

    def test_sleep_without_timer_event_rejected(self, pmu):
        with pytest.raises(FlowError):
            pmu.arm_baseline_monitor()

    def test_disarm_cancels(self, pmu, kernel):
        fired = []
        pmu.set_wake_callback(lambda target: fired.append(target))
        pmu.schedule_timer_event(2400)
        pmu.arm_baseline_monitor()
        pmu.disarm_monitor()
        kernel.run()
        assert fired == []

    def test_negative_target_rejected(self, pmu):
        from repro.errors import TimerError

        with pytest.raises(TimerError):
            pmu.schedule_timer_event(-1)


class TestStateExport:
    def test_roundtrip(self, pmu):
        pmu.firmware_state["patch_rev"] = 0x31AA
        pmu.schedule_timer_event(777)
        state = pmu.export_state()
        pmu.firmware_state = {}
        pmu.import_state(state)
        assert pmu.firmware_state["patch_rev"] == 0x31AA
        assert pmu.wake_target == 777
