"""Tests for memory regions and the protected-range register."""

import pytest

from repro.errors import MemoryFault
from repro.memory.region import MemoryRegion, RangeRegister


class TestMemoryRegion:
    def test_contains(self):
        region = MemoryRegion(100, 50)
        assert region.contains(100)
        assert region.contains(149)
        assert region.contains(100, 50)
        assert not region.contains(99)
        assert not region.contains(149, 2)

    def test_overlaps(self):
        region = MemoryRegion(100, 50)
        assert region.overlaps(90, 20)
        assert region.overlaps(140, 20)
        assert not region.overlaps(0, 100)
        assert not region.overlaps(150, 10)

    def test_offset_of(self):
        region = MemoryRegion(100, 50)
        assert region.offset_of(120) == 20
        with pytest.raises(MemoryFault):
            region.offset_of(99)

    def test_invalid_region_rejected(self):
        with pytest.raises(MemoryFault):
            MemoryRegion(-1, 10)
        with pytest.raises(MemoryFault):
            MemoryRegion(0, 0)

    def test_end(self):
        assert MemoryRegion(100, 50).end == 150


class TestRangeRegister:
    def test_matches_only_fully_inside(self):
        register = RangeRegister("rr")
        register.program(MemoryRegion(1000, 100))
        assert register.matches(1000, 100)
        assert register.matches(1050, 10)
        assert not register.matches(990, 20)

    def test_straddle_detection(self):
        """A straddling access would leak protected bytes; it must fault."""
        register = RangeRegister("rr")
        register.program(MemoryRegion(1000, 100))
        assert register.straddles(990, 20)
        assert register.straddles(1090, 20)
        assert not register.straddles(1000, 100)
        assert not register.straddles(0, 10)

    def test_unprogrammed_register_matches_nothing(self):
        register = RangeRegister("rr")
        assert not register.matches(0, 10)
        assert not register.straddles(0, 10)

    def test_lock_prevents_reprogramming(self):
        """SGX range registers freeze until reset, so untrusted software
        cannot move the protected window (Sec. 6.1)."""
        register = RangeRegister("rr")
        register.program(MemoryRegion(0, 100))
        register.lock()
        with pytest.raises(MemoryFault):
            register.program(MemoryRegion(200, 100))

    def test_lock_requires_programming(self):
        register = RangeRegister("rr")
        with pytest.raises(MemoryFault):
            register.lock()

    def test_reset_clears_and_unlocks(self):
        register = RangeRegister("rr")
        register.program(MemoryRegion(0, 100))
        register.lock()
        register.reset()
        assert register.region is None
        register.program(MemoryRegion(200, 100))  # allowed again
