"""Tests for the memory encryption engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SecurityError
from repro.memory.dram import DRAMDevice
from repro.memory.nvm import PCMDevice
from repro.sgx.cache import MEECache
from repro.sgx.integrity_tree import TreeGeometry
from repro.sgx.mee import MemoryEncryptionEngine

MASTER = b"fuse-master-key-0123456789abcdef"
REGION_BASE = 1 << 20


def make_mee(data_size=16 * 1024, device=None):
    if device is None:
        device = DRAMDevice("dram", capacity_bytes=256 * (1 << 20))
    geometry = TreeGeometry.for_data_size(REGION_BASE, data_size)
    mee = MemoryEncryptionEngine(device, geometry, MASTER, MEECache())
    mee.initialize_region()
    return device, mee


class TestDataPath:
    def test_roundtrip(self):
        _device, mee = make_mee()
        blob = bytes(range(256)) * 8
        mee.write(0, blob)
        data, latency = mee.read(0, len(blob))
        assert data == blob
        assert latency > 0

    def test_unaligned_partial_block_write(self):
        _device, mee = make_mee()
        mee.write(0, bytes(64))
        mee.write(10, b"inside")
        data, _ = mee.read(0, 64)
        assert data[10:16] == b"inside"
        assert data[:10] == bytes(10)

    def test_write_spanning_blocks(self):
        _device, mee = make_mee()
        blob = b"z" * 200  # spans 4 blocks, unaligned tail
        mee.write(30, blob)
        data, _ = mee.read(30, 200)
        assert data == blob

    def test_at_rest_content_is_ciphertext(self):
        device, mee = make_mee()
        plaintext = b"\x00" * 64
        mee.write(0, plaintext)
        raw = device._store.read(REGION_BASE, 64)
        assert raw != plaintext

    def test_rewrites_produce_fresh_ciphertext(self):
        device, mee = make_mee()
        plaintext = b"same-data-every-time" + bytes(44)
        mee.write(0, plaintext)
        first = device._store.read(REGION_BASE, 64)
        mee.write(0, plaintext)
        second = device._store.read(REGION_BASE, 64)
        assert first != second  # version bump re-keys the block

    def test_bounds_checked(self):
        _device, mee = make_mee(data_size=1024)
        with pytest.raises(SecurityError):
            mee.write(mee.data_capacity - 4, bytes(8))
        with pytest.raises(SecurityError):
            mee.read(-1, 4)

    def test_stats_accumulate(self):
        _device, mee = make_mee()
        mee.write(0, bytes(128))
        mee.read(0, 128)
        assert mee.stats.bytes_written == 128
        assert mee.stats.bytes_read == 128
        assert mee.stats.blocks_written == 2
        assert mee.crypto_energy_joules() > 0


class TestLifecycle:
    def test_uninitialized_region_rejected(self):
        device = DRAMDevice("dram", capacity_bytes=256 * (1 << 20))
        geometry = TreeGeometry.for_data_size(REGION_BASE, 1024)
        mee = MemoryEncryptionEngine(device, geometry, MASTER)
        with pytest.raises(SecurityError):
            mee.write(0, b"x")

    def test_power_cycle_preserves_protection(self):
        _device, mee = make_mee()
        blob = b"context!" * 16
        mee.write(0, blob)
        state = mee.power_off()
        with pytest.raises(SecurityError):
            mee.read(0, 8)
        mee.power_on(state)
        data, _ = mee.read(0, len(blob))
        assert data == blob

    def test_power_cycle_keeps_replay_protection(self):
        device, mee = make_mee()
        mee.write(0, b"v1" + bytes(62))
        snapshot_data = device._store.read(REGION_BASE, 64)
        state = mee.power_off()
        mee.power_on(state)
        mee.write(0, b"v2" + bytes(62))
        # attacker restores the old ciphertext after the power cycle
        device._store.write(REGION_BASE, snapshot_data)
        with pytest.raises(SecurityError):
            mee.read(0, 64)
        assert mee.stats.integrity_violations == 1

    def test_malformed_state_rejected(self):
        _device, mee = make_mee()
        with pytest.raises(SecurityError):
            mee.import_state(b"short")


class TestBulkTransfers:
    def test_bulk_roundtrip(self):
        _device, mee = make_mee(data_size=200 * 1024)
        import hashlib
        blob = b"".join(
            hashlib.sha256(i.to_bytes(4, "big")).digest()
            for i in range(200 * 1024 // 32)
        )
        write_latency = mee.bulk_write(0, blob)
        data, read_latency = mee.bulk_read(0, len(blob))
        assert data == blob
        assert write_latency > read_latency  # writes RMW the metadata

    def test_bulk_latency_matches_paper_scale(self):
        """Sec. 6.3: ~18 us save / ~13 us restore for 200 KB at DDR3-1600."""
        _device, mee = make_mee(data_size=200 * 1024)
        blob = bytes(200 * 1024)
        write_latency = mee.bulk_write(0, blob)
        _, read_latency = mee.bulk_read(0, len(blob))
        assert 10e6 < write_latency < 30e6   # 10-30 us window
        assert 8e6 < read_latency < 25e6

    def test_bulk_slows_down_with_dram_frequency(self):
        device, mee = make_mee(data_size=64 * 1024)
        blob = bytes(64 * 1024)
        fast = mee.bulk_write(0, blob)
        device.set_frequency(0.8e9)
        slow = mee.bulk_write(0, blob)
        assert slow > fast

    def test_bulk_works_over_pcm(self):
        device = PCMDevice(capacity_bytes=256 * (1 << 20))
        _d, mee = make_mee(data_size=16 * 1024, device=device)
        blob = bytes(16 * 1024)
        latency = mee.bulk_write(0, blob)
        data, _ = mee.bulk_read(0, len(blob))
        assert data == blob
        assert latency > 0


class TestRoundtripProperty:
    @given(
        offset=st.integers(min_value=0, max_value=1000),
        data=st.binary(min_size=1, max_size=500),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_offsets_roundtrip(self, offset, data):
        _device, mee = make_mee(data_size=2048)
        mee.write(offset, data)
        out, _ = mee.read(offset, len(data))
        assert out == data
