"""Tests for the power tree: aggregation, metering, attribution."""

import pytest

from repro.power.gates import BoardFETGate
from repro.units import SECOND


class TestAggregation:
    def test_platform_power_sums_rails(self, tree):
        rail_a = tree.new_rail("a", 1.0)
        rail_b = tree.new_rail("b", 1.0)
        rail_a.new_domain("da").new_component("ca", 0.1)
        rail_b.new_domain("db").new_component("cb", 0.2)
        assert tree.platform_power() == pytest.approx(0.3)

    def test_meter_follows_changes(self, tree, kernel, meter):
        rail = tree.new_rail("a", 1.0)
        component = rail.new_domain("d").new_component("c", 1.0)
        kernel.advance_to(SECOND)
        component.set_leakage(3.0)
        assert meter.power("platform") == pytest.approx(3.0)
        assert meter.energy("platform", up_to_ps=2 * SECOND) == pytest.approx(1.0 + 3.0)

    def test_trace_records_platform_power(self, tree, trace):
        rail = tree.new_rail("a", 1.0)
        rail.new_domain("d").new_component("c", 0.5)
        assert trace.last("platform").value == pytest.approx(0.5)

    def test_rail_lookup(self, tree):
        tree.new_rail("aon", 1.0)
        assert tree.rail("aon").name == "aon"
        with pytest.raises(KeyError):
            tree.rail("missing")


class TestSuspension:
    def test_batched_updates_collapse(self, tree, kernel, trace):
        rail = tree.new_rail("a", 1.0)
        domain = rail.new_domain("d")
        kernel.advance_to(100)
        samples_before = len(trace.samples("platform"))
        tree.suspend_updates()
        domain.new_component("c1", 0.1)
        domain.new_component("c2", 0.2)
        tree.resume_updates()
        new_samples = len(trace.samples("platform")) - samples_before
        assert new_samples == 1
        assert tree.platform_power() == pytest.approx(0.3)

    def test_nested_suspension(self, tree):
        rail = tree.new_rail("a", 1.0)
        domain = rail.new_domain("d")
        tree.suspend_updates()
        tree.suspend_updates()
        domain.new_component("c", 0.1)
        tree.resume_updates()
        tree.resume_updates()
        assert tree.platform_power() == pytest.approx(0.1)

    def test_resume_without_suspend_is_safe(self, tree):
        tree.resume_updates()


class TestAttribution:
    def test_components_attributed_directly_at_unit_efficiency(self, tree):
        rail = tree.new_rail("a", 1.0)
        domain = rail.new_domain("d")
        domain.new_component("x", 0.1)
        domain.new_component("y", 0.3)
        breakdown = tree.attributed_breakdown()
        assert breakdown["x"] == pytest.approx(0.1)
        assert breakdown["y"] == pytest.approx(0.3)

    def test_delivery_tax_distributed_proportionally(self, tree):
        from repro.power.regulator import EfficiencyCurve

        rail = tree.new_rail("a", 1.0, curve=EfficiencyCurve.constant(0.5))
        domain = rail.new_domain("d")
        domain.new_component("x", 0.1)
        domain.new_component("y", 0.3)
        breakdown = tree.attributed_breakdown()
        assert breakdown["x"] == pytest.approx(0.2)
        assert breakdown["y"] == pytest.approx(0.6)

    def test_gated_domain_booked_as_gate_leakage(self, tree):
        rail = tree.new_rail("a", 1.0)
        gate = BoardFETGate("fet")
        domain = rail.new_domain("d", gate=gate)
        domain.new_component("x", 1.0)
        domain.power_off()
        breakdown = tree.attributed_breakdown()
        assert "x" not in breakdown
        assert breakdown["gate:d"] == pytest.approx(gate.leakage_fraction)

    def test_fractions_sum_to_one(self, tree):
        rail = tree.new_rail("a", 1.0)
        domain = rail.new_domain("d")
        domain.new_component("x", 0.2)
        domain.new_component("y", 0.6)
        fractions = tree.breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["y"] == pytest.approx(0.75)

    def test_quiescent_only_rail_booked_as_vr(self, tree):
        rail = tree.new_rail("a", 1.0, quiescent_watts=0.05)
        rail.new_domain("d")  # empty
        breakdown = tree.attributed_breakdown()
        assert breakdown["vr:a"] == pytest.approx(0.05)
