"""Importable platform factories for the test suite.

In its own module (not conftest.py) to avoid module-name collisions with
benchmarks/conftest.py in combined pytest runs.
"""

from __future__ import annotations

from repro.config import ContextInventory, PlatformConfig, skylake_config
from repro.core.techniques import TechniqueSet
from repro.system.skylake import SkylakePlatform


def small_context_config() -> PlatformConfig:
    """A Skylake config with a small context, for fast MEE-path tests."""
    base = skylake_config()
    return PlatformConfig(
        name=base.name,
        processor=base.processor,
        chipset=base.chipset,
        process=base.process,
        context=ContextInventory(
            system_agent_bytes=4096,
            cores_bytes=6144,
            graphics_bytes=2048,
            boot_bytes=1024,
        ),
    )


def build_platform(techniques: TechniqueSet, small_context: bool = False) -> SkylakePlatform:
    """Platform factory used across system-level tests."""
    config = small_context_config() if small_context else None
    return SkylakePlatform(config=config, techniques=techniques)
