"""Regression tests for the defects the static verifier surfaced.

Each test pins one real bug found while bringing up ``repro.lint``:

* the AON-IO board FET was never bound to the chipset GPIO that drives
  it (M106 undriveable-gate);
* ``Regulator.input_power`` used exact float equality on the load, so a
  tiny negative-rounding residue would have bypassed the zero-load
  branch (S403 float-eq-power);
* ``BatteryLife.extra_days_vs`` compared battery capacities with ``!=``,
  rejecting capacities equal up to float rounding (S403).
"""

from __future__ import annotations

import pytest

from repro.analysis.battery import BatteryLife
from repro.errors import ConfigError
from repro.power.regulator import EfficiencyCurve, Regulator
from repro.system.skylake import SkylakePlatform
from repro.core.techniques import TechniqueSet


def test_aon_io_fet_is_driven_by_the_chipset_gpio():
    platform = SkylakePlatform(techniques=TechniqueSet.odrips())
    fet = platform.board.aon_io_fet
    assert fet.control_gpio is not None
    assert fet.control_gpio == platform.chipset.fet_gpio


def test_regulator_zero_load_hits_quiescent_branch():
    regulator = Regulator("vr", EfficiencyCurve.constant(0.74), quiescent_watts=5e-4)
    assert regulator.input_power(0.0) == pytest.approx(5e-4)
    # a load below float-equality-with-zero but not exactly zero must not
    # divide by an efficiency looked up for a "real" load
    assert regulator.input_power(0.0 * 1e-30) == pytest.approx(5e-4)


def test_battery_comparison_tolerates_float_rounding():
    wh = 38.0
    derived_wh = (wh * 10.0) / 10.0  # may differ in the last ulp
    a = BatteryLife(battery_wh=wh, average_power_w=5e-3)
    b = BatteryLife(battery_wh=derived_wh, average_power_w=4e-3)
    assert a.extra_days_vs(b) < 0  # no ConfigError for equal-ish capacities


def test_battery_comparison_still_rejects_different_batteries():
    a = BatteryLife(battery_wh=38.0, average_power_w=5e-3)
    b = BatteryLife(battery_wh=50.0, average_power_w=5e-3)
    with pytest.raises(ConfigError):
        a.extra_days_vs(b)
