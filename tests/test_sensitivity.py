"""Tests for the sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    budget_sensitivity,
    workload_sensitivity,
)
from repro.errors import ConfigError


class TestBudgetSensitivity:
    def test_nominal_saving_is_the_headline(self):
        rows = budget_sensitivity()
        assert rows[0].saving_nominal == pytest.approx(0.22, abs=0.01)

    def test_rows_sorted_by_swing(self):
        rows = budget_sensitivity()
        swings = [row.swing for row in rows]
        assert swings == sorted(swings, reverse=True)

    def test_technique_targets_move_saving_up(self):
        """Scaling up a component that ODRIPS eliminates (S/R SRAM) must
        increase the saving; scaling up one it keeps (board-other) must
        decrease it."""
        rows = {row.parameter: row for row in budget_sensitivity()}
        sram = rows["S/R SRAM power (9% slice)"]
        board = rows["rest-of-board power"]
        assert sram.saving_high > sram.saving_nominal > sram.saving_low
        assert board.saving_high < board.saving_nominal < board.saving_low

    def test_eliminated_slices_dominate_the_tornado(self):
        rows = budget_sensitivity()
        top_two = {rows[0].parameter, rows[1].parameter}
        assert top_two & {
            "S/R SRAM power (9% slice)",
            "AON IO power (7% slice)",
            "rest-of-board power",
            "chipset AON power",
        }

    def test_invalid_perturbation_rejected(self):
        with pytest.raises(ConfigError):
            budget_sensitivity(perturbation=0.0)
        with pytest.raises(ConfigError):
            budget_sensitivity(perturbation=1.5)


class TestWorkloadSensitivity:
    def test_saving_grows_with_idle_interval(self):
        """Longer idles weight DRIPS more; the saving rises toward the
        pure-DRIPS ratio."""
        points = workload_sensitivity()
        savings = [saving for _idle, saving in points]
        assert savings == sorted(savings)

    def test_30s_point_matches_headline(self):
        points = dict(workload_sensitivity())
        assert points[30.0] == pytest.approx(0.22, abs=0.01)

    def test_short_idles_dilute_saving(self):
        points = dict(workload_sensitivity())
        assert points[5.0] < points[30.0]
