"""The self-enforcing model-checker gate (tier 1).

Exhaustively explores the shipped Skylake platform in both extreme
configurations and runs the unit-dataflow pass over every module of
``repro``.  A change that breaks flow sequencing, violates a power-safety
invariant, or mixes units across a call boundary fails this test in the
same ``pytest`` invocation CI already runs — exactly like the lint gate.
"""

from __future__ import annotations

import pytest

from repro.check import (
    BUILTIN_INVARIANTS,
    CHECK_RULES,
    analyze_source_root,
    check_model_view,
    check_standby_model,
)
from repro.core.techniques import TechniqueSet
from repro.lint import all_rules, validate_rule_patterns
from repro.lint.diagnostics import render_text
from repro.lint.model import walk_model
from repro.system.skylake import SkylakePlatform


def describe(diagnostics) -> str:
    return render_text(diagnostics)


@pytest.mark.parametrize(
    "techniques", [TechniqueSet.baseline(), TechniqueSet.odrips()],
    ids=["baseline", "odrips"],
)
def test_shipped_platform_checks_clean_and_exhaustively(techniques):
    report = check_standby_model(techniques=techniques)
    assert report.diagnostics == [], describe(report.diagnostics)
    assert report.state_space["truncated"] is False
    assert report.state_space["states_explored"] >= 10


def test_checker_gate_is_not_vacuous():
    """Guard against the exploration silently finding nothing: a seeded
    single-step mutation must produce an invariant violation."""
    view = walk_model(SkylakePlatform(techniques=TechniqueSet.odrips()))
    for flow in view.flows:
        if flow.name == "exit":
            steps = tuple(s for s in flow.steps if s.label != "exit:xtal-restart")
            object.__setattr__(flow, "steps", steps)
    report = check_model_view(view)
    assert {d.rule for d in report.diagnostics} == {"C201", "C203"}


def test_repro_sources_pass_the_unit_dataflow():
    diagnostics = analyze_source_root()
    assert diagnostics == [], describe(diagnostics)


def test_repro_sources_pass_the_effects_analysis():
    """The shipped tree is effect-clean at every contract boundary —
    intentional instrumentation is declared with @declares_effects at the
    function that owns it, never pragma-silenced per file."""
    from repro.check import analyze_effects_source_root

    report = analyze_effects_source_root()
    assert report.diagnostics == [], describe(report.diagnostics)
    assert report.summary["converged"] is True
    # The discovery must actually see the shipped contract surface:
    # figure drivers, the cached measurement/model-check runners, and
    # the parallel sweep workers.
    kinds = {entry["kind"] for entry in report.summary["entry_points"]}
    assert kinds == {"driver", "cache", "sweep-worker"}
    assert len(report.summary["entry_points"]) >= 12
    # ...and the declared boundaries are the documented instrumentation
    # owners, not blanket whitelists.
    declared = {entry["qualname"] for entry in report.summary["declared"]}
    assert "ODRIPSController.measure" in declared
    assert "sweep" in declared
    assert "RunLog.append" in declared


def test_state_space_cache_makes_repeat_checks_free():
    from repro.perf.cache import SimulationCache

    cache = SimulationCache()
    first = check_standby_model(cache=cache)
    second = check_standby_model(cache=cache)
    assert second is first
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    # a different configuration is a different key, not a stale hit
    check_standby_model(techniques=TechniqueSet.baseline(), cache=cache)
    assert cache.stats.misses == 2


def test_rule_registry_is_single_and_collision_free():
    """Satellite: one registry serves lint and check; ids never collide."""
    pairs = all_rules()
    ids = [rule_id for rule_id, _ in pairs]
    assert len(ids) == len(set(ids)), "duplicate rule ids in the registry"
    names = [name for _, name in pairs]
    assert len(names) == len(set(names)), "duplicate rule names in the registry"
    registered = set(ids)
    assert {rule.rule_id for rule in CHECK_RULES} <= registered
    assert "S407" in registered
    # C-series patterns validate exactly like M/S patterns
    validate_rule_patterns(["C1", "C101", "deadlock", "arith-unit-mismatch"], pairs)


def test_every_builtin_invariant_is_registered():
    registered = {rule_id for rule_id, _ in all_rules()}
    for invariant in BUILTIN_INVARIANTS:
        assert invariant.rule.rule_id in registered
