"""Tests for the DRIPS/ODRIPS entry and exit flows."""

import pytest

from repro.core.techniques import ContextStore, Technique, TechniqueSet
from repro.errors import FlowError
from repro.io.wake import WakeEventType
from repro.system.flows import FlowController
from repro.system.states import PlatformState
from repro.memory.dram import DRAMState

from _platform import build_platform


def run_one_cycle(techniques, idle_s=0.05, small_context=True):
    """Boot, enter DRIPS, wake by timer, return (platform, flows)."""
    platform = build_platform(techniques, small_context=small_context)
    flows = FlowController(platform)
    woke = []
    flows.set_active_callback(lambda event: woke.append(event))
    platform.boot()
    platform.pmu.schedule_timer_event(platform.next_timer_target(idle_s))
    flows.request_drips()
    platform.kernel.run(max_events=100_000)
    assert woke, "platform never woke up"
    return platform, flows, woke


ALL_STORES = [
    TechniqueSet.baseline(),
    TechniqueSet.wake_up_off_only(),
    TechniqueSet.with_io_gating(),
    TechniqueSet.ctx_sgx_dram_only(),
    TechniqueSet.odrips(),
    TechniqueSet.odrips_mram(),
    TechniqueSet.odrips_pcm(),
    TechniqueSet({Technique.CTX_SGX_DRAM}, ContextStore.CHIPSET_SRAM),
]


class TestFullCycleEveryConfiguration:
    @pytest.mark.parametrize("techniques", ALL_STORES, ids=lambda t: t.label())
    def test_cycle_completes_and_context_verified(self, techniques):
        platform, flows, woke = run_one_cycle(techniques)
        assert platform.state is PlatformState.ACTIVE
        assert woke[0].event_type is WakeEventType.TIMER
        # the flows verified the restored context internally; re-check:
        assert platform.compute.expected_context is not None
        assert flows.stats.entry_latencies_ps and flows.stats.exit_latencies_ps

    @pytest.mark.parametrize("techniques", ALL_STORES, ids=lambda t: t.label())
    def test_state_sequence(self, techniques):
        platform, _flows, _woke = run_one_cycle(techniques)
        states = [value for _t, value in
                  [(s.time_ps, s.value) for s in platform.trace.samples("state")]]
        assert states[:1] == ["boot"]
        assert states[1:5] == ["active", "entry", "drips", "exit"]
        assert states[5] == "active"


class TestBaselineFlow:
    def test_latencies_match_paper(self):
        """Sec. 7: entry ~200 us, exit ~300 us."""
        _platform, flows, _ = run_one_cycle(TechniqueSet.baseline())
        assert flows.stats.entry_latencies_ps[0] == pytest.approx(200e6, rel=0.05)
        assert flows.stats.exit_latencies_ps[0] == pytest.approx(300e6, rel=0.05)

    def test_dram_in_self_refresh_during_drips(self):
        platform = build_platform(TechniqueSet.baseline())
        flows = FlowController(platform)
        platform.boot()
        platform.pmu.schedule_timer_event(platform.next_timer_target(0.05))
        flows.request_drips()
        # run until we are inside DRIPS
        platform.kernel.run(until_ps=platform.kernel.now + 10 * 10**9)
        assert platform.state is PlatformState.DRIPS
        assert platform.board.memory.state is DRAMState.SELF_REFRESH
        assert platform.memory_controller.in_self_refresh
        platform.kernel.run(max_events=100_000)

    def test_llc_flushed_before_drips(self):
        platform, _flows, _ = run_one_cycle(TechniqueSet.baseline())
        assert platform.llc.flush_count == 1

    def test_entry_without_timer_event_rejected(self):
        platform = build_platform(TechniqueSet.baseline())
        flows = FlowController(platform)
        platform.boot()
        with pytest.raises(FlowError):
            flows.request_drips()

    def test_entry_from_non_active_rejected(self):
        platform = build_platform(TechniqueSet.baseline())
        flows = FlowController(platform)
        with pytest.raises(FlowError):
            flows.request_drips()


class TestODRIPSFlow:
    def test_fast_crystal_off_in_odrips(self):
        platform = build_platform(TechniqueSet.odrips(), small_context=True)
        flows = FlowController(platform)
        platform.boot()
        platform.pmu.schedule_timer_event(platform.next_timer_target(0.05))
        flows.request_drips()
        platform.kernel.run(until_ps=platform.kernel.now + 10 * 10**9)
        assert platform.state is PlatformState.DRIPS
        assert not platform.board.fast_xtal.enabled
        assert platform.aon_io_bank.gated
        assert platform.sr_srams.sa_sram.state.value == "off"
        platform.kernel.run(max_events=100_000)
        assert platform.board.fast_xtal.enabled  # back on after exit

    def test_exit_latency_tens_of_us_over_baseline(self):
        """Sec. 3: ODRIPS affords 'milliseconds' but adds only tens of us."""
        _p1, base_flows, _ = run_one_cycle(TechniqueSet.baseline())
        _p2, odrips_flows, _ = run_one_cycle(TechniqueSet.odrips())
        extra = odrips_flows.stats.exit_latencies_ps[0] - base_flows.stats.exit_latencies_ps[0]
        assert 10e6 < extra < 200e6  # between 10 us and 200 us

    def test_timer_consistency_across_sleep(self):
        """The TSC must track wall time through freeze/handoff/restore."""
        platform, _flows, _ = run_one_cycle(TechniqueSet.odrips(), idle_s=0.2)
        now = platform.kernel.now
        tsc = platform.pmu.tsc.read(now)
        wall_cycles = platform.board.fast_clock.effective_hz * (now / 1e12)
        # within a handful of cycles + compensation constants
        assert abs(tsc - wall_cycles) < 200

    def test_thermal_wake_through_chipset(self):
        platform = build_platform(TechniqueSet.odrips(), small_context=True)
        flows = FlowController(platform)
        woke = []
        flows.set_active_callback(lambda event: woke.append(event))
        platform.boot()
        platform.pmu.schedule_timer_event(platform.next_timer_target(10.0))
        flows.request_drips()
        platform.kernel.run(until_ps=platform.kernel.now + 10 * 10**9)
        assert platform.state is PlatformState.DRIPS
        platform.board.ec.force_thermal_event()
        platform.kernel.run(max_events=100_000)
        assert woke and woke[0].event_type is WakeEventType.THERMAL

    def test_external_wake_baseline_path(self):
        platform = build_platform(TechniqueSet.baseline())
        flows = FlowController(platform)
        woke = []
        flows.set_active_callback(lambda event: woke.append(event))
        platform.boot()
        platform.pmu.schedule_timer_event(platform.next_timer_target(10.0))
        flows.request_drips()
        platform.kernel.run(until_ps=platform.kernel.now + 10 * 10**9)
        flows.external_wake(WakeEventType.NETWORK, "packet")
        platform.kernel.run(max_events=100_000)
        assert woke and woke[0].event_type is WakeEventType.NETWORK

    def test_external_wake_while_active_is_noop(self):
        platform = build_platform(TechniqueSet.baseline())
        flows = FlowController(platform)
        platform.boot()
        flows.external_wake(WakeEventType.NETWORK)
        assert platform.state is PlatformState.ACTIVE


class TestContextLatencyStats:
    def test_mee_save_restore_recorded(self):
        _platform, flows, _ = run_one_cycle(TechniqueSet.odrips())
        assert len(flows.stats.ctx_save_latencies_ps) == 1
        assert len(flows.stats.ctx_restore_latencies_ps) == 1
        assert flows.stats.ctx_save_latencies_ps[0] > 0

    def test_pcm_context_rotates_across_slots(self):
        """Wear leveling: successive DRIPS entries write different slots
        of the PCM protected region (Sec. 6.1 endurance concern)."""
        platform = build_platform(TechniqueSet.odrips_pcm(), small_context=True)
        flows = FlowController(platform)
        count = {"cycles": 0}

        def again(_event):
            count["cycles"] += 1
            if count["cycles"] < 3:
                platform.pmu.schedule_timer_event(platform.next_timer_target(0.02))
                flows.request_drips()

        flows.set_active_callback(again)
        platform.boot()
        platform.pmu.schedule_timer_event(platform.next_timer_target(0.02))
        flows.request_drips()
        platform.kernel.run(max_events=300_000)
        assert count["cycles"] == 3
        allocator = platform.context_allocator
        assert allocator is not None
        assert len(allocator.writes_per_slot) == 3  # three distinct slots
        assert allocator.wear_ratio() <= allocator.slots

    def test_dram_sgx_has_no_rotation(self):
        platform = build_platform(TechniqueSet.odrips(), small_context=True)
        assert platform.context_allocator is None

    def test_repeated_cycles_use_fresh_context(self):
        platform = build_platform(TechniqueSet.odrips(), small_context=True)
        flows = FlowController(platform)
        count = {"cycles": 0}

        def again(_event):
            count["cycles"] += 1
            if count["cycles"] < 3:
                platform.pmu.schedule_timer_event(platform.next_timer_target(0.02))
                flows.request_drips()

        flows.set_active_callback(again)
        platform.boot()
        platform.pmu.schedule_timer_event(platform.next_timer_target(0.02))
        flows.request_drips()
        platform.kernel.run(max_events=300_000)
        assert count["cycles"] == 3
        assert len(flows.stats.entry_latencies_ps) == 3
