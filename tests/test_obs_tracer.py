"""Unit tests for the repro.obs tracer, metrics and process-wide hook."""

import pytest

from repro.errors import MeasurementError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import (
    FLOW_STEP_TRACK,
    MEASURE_TRACK,
    Tracer,
    active,
    install,
    observe,
    uninstall,
)


class TestSpans:
    def test_begin_end_roundtrip(self):
        tracer = Tracer()
        span = tracer.begin("entry:llc-flush", 100)
        assert not span.closed
        assert span.duration_ps == 0
        assert tracer.open_spans() == [span]
        tracer.end(span, 350)
        assert span.closed
        assert span.duration_ps == 250
        assert tracer.open_spans() == []
        assert tracer.closed_spans() == [span]

    def test_default_track_is_flow_steps(self):
        tracer = Tracer()
        span = tracer.begin("x", 0)
        assert span.track == FLOW_STEP_TRACK

    def test_closed_spans_filters_by_track(self):
        tracer = Tracer()
        a = tracer.begin("a", 0)
        b = tracer.begin("b", 0, track=MEASURE_TRACK)
        tracer.end(a, 10)
        tracer.end(b, 10)
        assert tracer.closed_spans(MEASURE_TRACK) == [b]
        assert tracer.closed_spans() == [a, b]

    def test_double_close_rejected(self):
        tracer = Tracer()
        span = tracer.begin("x", 0)
        tracer.end(span, 5)
        with pytest.raises(ValueError, match="already closed"):
            tracer.end(span, 10)

    def test_backwards_close_rejected(self):
        tracer = Tracer()
        span = tracer.begin("x", 100)
        with pytest.raises(ValueError, match="before it opened"):
            tracer.end(span, 99)

    def test_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("analyzer:platform", 10, 90) as span:
            assert not span.closed
        assert span.closed
        assert span.start_ps == 10 and span.end_ps == 90
        assert span.track == MEASURE_TRACK


class TestInstrumentationCallbacks:
    def test_kernel_event_records_instant_and_counter(self):
        tracer = Tracer()
        tracer.kernel_event("timer-fire", 42)
        tracer.kernel_event("timer-fire", 84)
        tracer.kernel_event("", 99)  # unlabeled events count under 'anon'
        names = [instant.name for instant in tracer.instants]
        assert names == ["timer-fire", "timer-fire", "anon"]
        assert tracer.metrics.counter_value("kernel.events:timer-fire") == 2
        assert tracer.metrics.counter_value("kernel.events:anon") == 1

    def test_pmu_transition(self):
        tracer = Tracer()
        tracer.pmu_transition("active", "drips", 1000)
        assert tracer.instants[0].name == "pmu:active->drips"
        assert tracer.metrics.counter_value("pmu.transitions:drips") == 1

    def test_wake_delivered_keeps_detail(self):
        tracer = Tracer()
        tracer.wake_delivered("timer", 7, detail="rtc")
        assert tracer.instants[0].args == {"detail": "rtc"}
        assert tracer.metrics.counter_value("wake.delivered:timer") == 1

    def test_set_window(self):
        tracer = Tracer()
        assert tracer.window_ps is None
        tracer.set_window(5, 105)
        assert tracer.window_ps == (5, 105)


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        metrics = MetricsRegistry()
        metrics.counter("hits").inc()
        metrics.counter("hits").inc(3)
        assert metrics.counter_value("hits") == 4
        assert metrics.counter_value("absent") == 0

    def test_counter_rejects_negative_increment(self):
        metrics = MetricsRegistry()
        with pytest.raises(MeasurementError):
            metrics.counter("hits").inc(-1)

    def test_histogram_stats(self):
        metrics = MetricsRegistry()
        hist = metrics.histogram("latency_us")
        for value in (3.0, 1.0, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(2.0)
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(0.5) == 2.0
        assert hist.percentile(1.0) == 3.0

    def test_snapshot_shape(self):
        metrics = MetricsRegistry()
        metrics.counter("c").inc()
        metrics.gauge("g").set(2.5)
        metrics.histogram("h").observe(1.0)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"c": 1}
        assert snapshot["gauges"] == {"g": 2.5}
        assert snapshot["histograms"]["h"]["count"] == 1


class TestProcessWideHook:
    def test_install_uninstall(self):
        assert active() is None
        tracer = install()
        try:
            assert active() is tracer
        finally:
            uninstall()
        assert active() is None

    def test_observe_restores_disabled_state(self):
        with observe() as tracer:
            assert active() is tracer
        assert active() is None

    def test_observe_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with observe():
                raise RuntimeError("boom")
        assert active() is None

    def test_install_accepts_existing_tracer(self):
        mine = Tracer()
        try:
            assert install(mine) is mine
            assert active() is mine
        finally:
            uninstall()
