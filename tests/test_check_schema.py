"""Tests of the ``repro check --json`` payload validator."""

from __future__ import annotations

import copy
import json

import pytest

from repro.check.schema import validate_check_payload
from repro.cli import main
from repro.lint.diagnostics import EXIT_CLEAN, EXIT_DIAGNOSTICS


@pytest.fixture(scope="module")
def live_payload(tmp_path_factory):
    """One real ``repro check --json`` payload over a small dirty tree."""
    root = tmp_path_factory.mktemp("schema")
    module = root / "exp.py"
    module.write_text(
        "import time\n"
        "def latency_ps():\n"
        "    return 3.5\n"  # C402: *_ps returning a float-ish expression
        "@experiment_driver('fig')\n"
        "def drv():\n"
        "    return time.time()\n"
    )
    import io
    from contextlib import redirect_stdout

    stream = io.StringIO()
    with redirect_stdout(stream):
        code = main(["check", "--json", "--path", str(module)])
    assert code == EXIT_DIAGNOSTICS
    return json.loads(stream.getvalue())


def test_the_live_payload_validates(live_payload):
    assert validate_check_payload(live_payload, expect_effects=True) == []


def test_the_live_payload_carries_both_sections(live_payload):
    assert "state_space" in live_payload
    assert "effects" in live_payload
    assert any(
        entry["clean"] is False
        for entry in live_payload["effects"]["entry_points"]
    )


def test_non_object_payload_is_one_problem():
    assert validate_check_payload([1, 2]) == [
        "payload: expected object, got list"
    ]


def test_wrong_version_is_reported(live_payload):
    payload = copy.deepcopy(live_payload)
    payload["version"] = 99
    assert any("version" in p for p in validate_check_payload(payload))


def test_missing_state_space_is_reported(live_payload):
    payload = copy.deepcopy(live_payload)
    del payload["state_space"]
    assert "payload: missing key 'state_space'" in validate_check_payload(payload)


def test_count_mismatch_is_reported(live_payload):
    payload = copy.deepcopy(live_payload)
    payload["counts"]["error"] += 1
    assert any("severities sum" in p for p in validate_check_payload(payload))


def test_broken_diagnostic_shape_is_reported(live_payload):
    payload = copy.deepcopy(live_payload)
    payload["diagnostics"][0].pop("severity")
    problems = validate_check_payload(payload)
    assert any("diagnostics[0]" in p and "severity" in p for p in problems)


def test_clean_entry_with_effects_is_inconsistent(live_payload):
    payload = copy.deepcopy(live_payload)
    dirty = next(
        entry
        for entry in payload["effects"]["entry_points"]
        if not entry["clean"]
    )
    dirty["clean"] = True
    assert any(
        "clean entry carries effects" in p for p in validate_check_payload(payload)
    )


def test_unknown_entry_kind_is_reported(live_payload):
    payload = copy.deepcopy(live_payload)
    payload["effects"]["entry_points"][0]["kind"] = "cron-job"
    assert any(".kind" in p for p in validate_check_payload(payload))


def test_expect_effects_false_rejects_the_section(live_payload):
    problems = validate_check_payload(live_payload, expect_effects=False)
    assert any("unexpected key 'effects'" in p for p in problems)


def test_no_effects_payload_validates_without_the_section(tmp_path, capsys):
    module = tmp_path / "clean.py"
    module.write_text("def run(duration_ps: int) -> int:\n    return duration_ps\n")
    assert main(["check", "--json", "--no-effects", "--path", str(module)]) == EXIT_CLEAN
    payload = json.loads(capsys.readouterr().out)
    assert validate_check_payload(payload, expect_effects=False) == []


# --- budgets section ---------------------------------------------------------


@pytest.fixture(scope="module")
def budget_payload(tmp_path_factory):
    """One real ``repro check --budgets --json`` payload over a clean tree."""
    root = tmp_path_factory.mktemp("budget_schema")
    module = root / "clean.py"
    module.write_text("def run(duration_ps: int) -> int:\n    return duration_ps\n")
    import io
    from contextlib import redirect_stdout

    stream = io.StringIO()
    with redirect_stdout(stream):
        code = main(["check", "--budgets", "--json", "--path", str(module)])
    assert code == EXIT_CLEAN
    return json.loads(stream.getvalue())


def test_budget_payload_validates(budget_payload):
    assert validate_check_payload(budget_payload, expect_budgets=True) == []


def test_budget_payload_carries_both_configurations(budget_payload):
    for label in ("baseline", "odrips"):
        row = budget_payload["budgets"][label]["deep_states"]["DRIPS"]
        assert row["worst_exit_latency_ps"] <= row["wake_budget_ps"]
        assert row["break_even_s"] > 0


def test_expect_budgets_true_requires_the_section(live_payload):
    problems = validate_check_payload(live_payload, expect_budgets=True)
    assert "payload: missing key 'budgets'" in problems


def test_expect_budgets_false_rejects_the_section(budget_payload):
    problems = validate_check_payload(budget_payload, expect_budgets=False)
    assert any("unexpected key 'budgets'" in p for p in problems)


def test_broken_budget_row_is_reported(budget_payload):
    payload = copy.deepcopy(budget_payload)
    del payload["budgets"]["odrips"]["deep_states"]["DRIPS"]["worst_exit_latency_ps"]
    payload["budgets"]["odrips"]["deep_states"]["DRIPS"]["break_even_s"] = "soon"
    problems = validate_check_payload(payload)
    assert any("worst_exit_latency_ps" in p for p in problems)
    assert any("break_even_s" in p for p in problems)


def test_default_payload_has_no_budgets_section(live_payload):
    assert "budgets" not in live_payload
