"""End-to-end tests of ``python -m repro lint`` (via cli.main)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.lint.diagnostics import EXIT_CLEAN, EXIT_DIAGNOSTICS, EXIT_USAGE


@pytest.fixture
def clean_module(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text("def run(duration_ps: int) -> int:\n    return duration_ps\n")
    return str(path)


@pytest.fixture
def dirty_module(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(
        "import time\n"
        "start_ps = 1.5\n"
        "t = time.time()\n"
    )
    return str(path)


def test_clean_run_exits_zero(capsys, clean_module):
    # model verifier on the shipped platforms + source checker on a clean file
    assert main(["lint", "--path", clean_module]) == EXIT_CLEAN
    assert "no problems found" in capsys.readouterr().out


def test_findings_exit_one_with_readable_text(capsys, dirty_module):
    assert main(["lint", "--path", dirty_module]) == EXIT_DIAGNOSTICS
    out = capsys.readouterr().out
    assert "S401" in out and "S402" in out
    assert "dirty.py" in out
    assert "problem(s)" in out


def test_json_output_is_machine_readable(capsys, dirty_module):
    assert main(["lint", "--json", "--path", dirty_module]) == EXIT_DIAGNOSTICS
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert set(payload) == {"version", "counts", "diagnostics"}
    rules = {d["rule"] for d in payload["diagnostics"]}
    assert {"S401", "S402"} <= rules
    assert payload["counts"]["error"] >= 2


def test_select_narrows_to_one_family(capsys, dirty_module):
    code = main(["lint", "--json", "--select", "S401", "--path", dirty_module])
    payload = json.loads(capsys.readouterr().out)
    assert code == EXIT_DIAGNOSTICS
    assert {d["rule"] for d in payload["diagnostics"]} == {"S401"}


def test_ignore_suppresses_everything(capsys, dirty_module):
    code = main(["lint", "--ignore", "S401,S402", "--path", dirty_module])
    assert code == EXIT_CLEAN
    assert "no problems found" in capsys.readouterr().out


def test_unknown_rule_is_a_usage_error(capsys, clean_module):
    assert main(["lint", "--select", "Z999", "--path", clean_module]) == EXIT_USAGE
    err = capsys.readouterr().err
    assert "Z999" in err


def test_missing_path_is_a_usage_error_not_a_traceback(capsys):
    assert main(["lint", "--path", "/does/not/exist.py"]) == EXIT_USAGE
    err = capsys.readouterr().err
    assert "/does/not/exist.py" in err


def test_rule_name_accepted_as_pattern(clean_module, dirty_module, capsys):
    code = main(["lint", "--select", "wallclock-in-sim", "--path", dirty_module])
    out = capsys.readouterr().out
    assert code == EXIT_DIAGNOSTICS
    assert "S401" in out and "S402" not in out


def test_explain_prints_rule_identity_and_example(capsys):
    assert main(["lint", "--explain", "M101"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "M101" in out
    assert "example diagnostic:" in out


def test_explain_covers_the_checker_family_too(capsys):
    assert main(["lint", "--explain", "C605"]) == EXIT_CLEAN
    assert "cycle-energy-above-golden" in capsys.readouterr().out


def test_explain_unknown_rule_is_a_usage_error(capsys):
    assert main(["lint", "--explain", "Z999"]) == EXIT_USAGE
    assert "Z999" in capsys.readouterr().err


def test_every_unknown_pattern_is_reported_at_once(capsys, clean_module):
    code = main(["lint", "--select", "Z999,Q888", "--path", clean_module])
    assert code == EXIT_USAGE
    err = capsys.readouterr().err
    assert "Z999" in err and "Q888" in err
