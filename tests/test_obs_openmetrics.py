"""Tests for repro.obs.openmetrics: exposition rendering + validation.

The exposition writer and the hand-rolled structural validator are
developed against each other: everything the writer emits must
round-trip through the validator cleanly, and the validator must reject
the classic exposition mistakes (missing ``# EOF``, counters without
``_total``, non-cumulative buckets, samples before their ``# TYPE``).
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.openmetrics import (
    escape_label_value,
    render_openmetrics,
    sanitize_metric_name,
    validate_openmetrics,
    write_openmetrics,
)
from repro.obs.stream import TelemetryStream


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("kernel.events:timer-fire").inc()
    registry.counter("kernel.events:wake").inc()
    registry.counter("macro.steps").inc()
    registry.gauge("cache.hit_rate").set(0.75)
    exact = registry.histogram("flow.entry_latency_us")
    for value in (100.0, 200.0, 300.0):
        exact.observe(value)
    bounded = registry.histogram("cycle.duration_s", bounded=True)
    for value in (30.0, 30.5, 31.0):
        bounded.observe(value)
    return registry


class TestNames:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("cycle.duration_s") == "repro_cycle_duration_s"
        assert sanitize_metric_name("a b/c") == "repro_a_b_c"
        assert sanitize_metric_name("9lives") == "repro__9lives"
        assert sanitize_metric_name("") == "repro_unnamed"

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestRendering:
    def test_round_trips_through_validator(self):
        text = render_openmetrics(_populated_registry())
        assert validate_openmetrics(text) == []
        assert text.endswith("# EOF\n")

    def test_counter_variants_fold_into_event_labels(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_kernel_events counter" in text
        assert 'repro_kernel_events_total{event="timer-fire"} 1' in text
        assert 'repro_kernel_events_total{event="wake"} 1' in text
        assert "repro_macro_steps_total 1" in text  # no variant: bare family

    def test_exact_histogram_becomes_summary(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_flow_entry_latency_us summary" in text
        assert 'repro_flow_entry_latency_us{quantile="0.5"} 200.0' in text
        assert "repro_flow_entry_latency_us_count 3" in text
        assert "repro_flow_entry_latency_us_sum 600.0" in text

    def test_bounded_histogram_becomes_histogram_family(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_cycle_duration_s histogram" in text
        assert 'repro_cycle_duration_s_bucket{le="+Inf"} 3' in text
        assert "repro_cycle_duration_s_count 3" in text

    def test_fingerprint_exemplar_on_inf_bucket(self):
        stream = TelemetryStream()
        stream.set_label("fingerprint", "abc123")
        stream.histogram("measure.wall_s").observe(0.5)
        text = render_openmetrics(None, stream)
        assert validate_openmetrics(text) == []
        assert (
            'repro_measure_wall_s_bucket{le="+Inf"} 1 '
            '# {fingerprint="abc123"} 0.5' in text
        )

    def test_heartbeats_become_source_labelled_gauges(self):
        stream = TelemetryStream()
        stream.set_label("experiment", "fig2")
        stream.heartbeat("runner", done=2, total=4)
        text = render_openmetrics(None, stream)
        assert validate_openmetrics(text) == []
        assert (
            'repro_heartbeat_frac{experiment="fig2",source="runner"} 0.5' in text
        )

    def test_empty_exposition_is_just_eof(self):
        text = render_openmetrics()
        assert text == "# EOF\n"
        assert validate_openmetrics(text) == []

    def test_write_openmetrics(self, tmp_path):
        target = write_openmetrics(tmp_path / "out" / "metrics.txt")
        assert target.read_text() == "# EOF\n"


class TestValidator:
    def test_missing_eof(self):
        problems = validate_openmetrics("# TYPE repro_x counter\nrepro_x_total 1\n")
        assert any("# EOF" in p for p in problems)

    def test_counter_sample_without_total_suffix(self):
        text = "# TYPE repro_x counter\nrepro_x 1\n# EOF"
        # "repro_x" resolves to the declared family but flunks the naming rule
        assert any("_total" in p for p in validate_openmetrics(text))

    def test_sample_before_type_declaration(self):
        text = "repro_x_total 1\n# TYPE repro_x counter\n# EOF"
        assert any("no preceding TYPE" in p for p in validate_openmetrics(text))

    def test_non_cumulative_buckets(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 5\n'
            'repro_h_bucket{le="2.0"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 5\n"
            "repro_h_sum 9.0\n"
            "# EOF"
        )
        assert any("not cumulative" in p for p in validate_openmetrics(text))

    def test_count_must_match_inf_bucket(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_count 4\n"
            "repro_h_sum 9.0\n"
            "# EOF"
        )
        assert any("_count" in p for p in validate_openmetrics(text))

    def test_missing_inf_bucket_and_sum(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 5\n'
            "repro_h_count 5\n"
            "# EOF"
        )
        problems = validate_openmetrics(text)
        assert any("+Inf" in p for p in problems)
        assert any("_sum" in p for p in problems)

    def test_blank_lines_and_duplicate_types_rejected(self):
        text = (
            "# TYPE repro_x counter\n"
            "\n"
            "# TYPE repro_x counter\n"
            "repro_x_total 1\n"
            "# EOF"
        )
        problems = validate_openmetrics(text)
        assert any("blank" in p for p in problems)
        assert any("duplicate TYPE" in p for p in problems)

    def test_unparseable_sample(self):
        text = "# TYPE repro_x counter\nrepro_x_total one\n# EOF"
        assert any("unparseable" in p for p in validate_openmetrics(text))


class TestLiveExposition:
    def test_observed_fig2_run_round_trips(self):
        """A real observed run's exposition validates cleanly."""
        from repro import obs
        from repro.obs.stream import streaming

        with streaming() as stream:
            session = obs.run_traced("fig2", cycles=2)
        text = render_openmetrics(session.tracer.metrics, stream)
        assert validate_openmetrics(text) == []
        assert "repro_heartbeat_done" in text
        assert "repro_cycle_duration_s_count" in text
