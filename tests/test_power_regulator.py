"""Tests for regulators and efficiency curves."""

import pytest

from repro.errors import PowerError
from repro.power.regulator import EfficiencyCurve, Regulator


class TestEfficiencyCurve:
    def test_constant_curve(self):
        curve = EfficiencyCurve.constant(0.74)
        assert curve.efficiency(1e-5) == pytest.approx(0.74)
        assert curve.efficiency(10.0) == pytest.approx(0.74)

    def test_interpolation_in_log_space(self):
        curve = EfficiencyCurve([(0.01, 0.5), (1.0, 0.9)])
        # geometric midpoint of 0.01 and 1.0 is 0.1
        assert curve.efficiency(0.1) == pytest.approx(0.7)

    def test_clamped_below_and_above(self):
        curve = EfficiencyCurve([(0.01, 0.5), (1.0, 0.9)])
        assert curve.efficiency(0.0001) == pytest.approx(0.5)
        assert curve.efficiency(100.0) == pytest.approx(0.9)

    def test_zero_load_uses_first_point(self):
        curve = EfficiencyCurve([(0.01, 0.5), (1.0, 0.9)])
        assert curve.efficiency(0.0) == pytest.approx(0.5)

    def test_invalid_points_rejected(self):
        with pytest.raises(PowerError):
            EfficiencyCurve([])
        with pytest.raises(PowerError):
            EfficiencyCurve([(-1.0, 0.5)])
        with pytest.raises(PowerError):
            EfficiencyCurve([(1.0, 1.5)])

    def test_unsorted_points_are_sorted(self):
        curve = EfficiencyCurve([(1.0, 0.9), (0.01, 0.5)])
        assert curve.efficiency(1.0) == pytest.approx(0.9)


class TestRegulator:
    def test_input_power_divides_by_efficiency(self):
        regulator = Regulator("vr", EfficiencyCurve.constant(0.8))
        assert regulator.input_power(0.8) == pytest.approx(1.0)

    def test_quiescent_at_zero_load(self):
        regulator = Regulator("vr", EfficiencyCurve.constant(0.8), quiescent_watts=0.05)
        assert regulator.input_power(0.0) == pytest.approx(0.05)

    def test_disabled_zero_load_draws_nothing(self):
        regulator = Regulator("vr", EfficiencyCurve.constant(0.8), quiescent_watts=0.05)
        regulator.disable()
        assert regulator.input_power(0.0) == 0.0

    def test_disabled_with_load_faults(self):
        regulator = Regulator("vr", EfficiencyCurve.constant(0.8))
        regulator.disable()
        with pytest.raises(PowerError):
            regulator.input_power(1.0)

    def test_disable_with_live_load_rejected(self):
        regulator = Regulator("vr", EfficiencyCurve.constant(0.8))
        with pytest.raises(PowerError):
            regulator.disable(load_watts=0.5)

    def test_enable_counts(self):
        regulator = Regulator("vr", EfficiencyCurve.constant(1.0))
        regulator.disable()
        regulator.enable()
        regulator.enable()  # no-op
        assert regulator.enable_count == 1

    def test_negative_load_rejected(self):
        regulator = Regulator("vr", EfficiencyCurve.constant(1.0))
        with pytest.raises(PowerError):
            regulator.input_power(-0.1)

    def test_negative_quiescent_rejected(self):
        with pytest.raises(PowerError):
            Regulator("vr", EfficiencyCurve.constant(1.0), quiescent_watts=-0.1)

    def test_drips_efficiency_of_the_paper(self):
        """Sec. 8 footnote: a 10 mW load costs 10/0.74 = 13.51 mW."""
        regulator = Regulator("vr", EfficiencyCurve.constant(0.74))
        assert regulator.input_power(0.010) * 1e3 == pytest.approx(13.51, abs=0.01)
