"""Failure injection: attacks and faults during the idle window.

The flows must fail *loudly* when the world misbehaves while the
processor context sits in DRAM: tampering, replay, memory power loss,
ordering violations.  Silent corruption would defeat the entire point of
CTX-SGX-DRAM.
"""

import pytest

from repro.core.techniques import TechniqueSet
from repro.errors import FlowError, MemoryFault, SecurityError
from repro.system.flows import FlowController
from repro.system.states import PlatformState

from _platform import build_platform


def enter_drips(techniques, idle_s=10.0):
    """Drive a platform into DRIPS and return (platform, flows)."""
    platform = build_platform(techniques, small_context=True)
    flows = FlowController(platform)
    platform.boot()
    platform.pmu.schedule_timer_event(platform.next_timer_target(idle_s))
    flows.request_drips()
    platform.kernel.run(until_ps=platform.kernel.now + 5 * 10**9)
    assert platform.state is PlatformState.DRIPS
    return platform, flows


class TestDRAMTampering:
    def test_ciphertext_corruption_detected_on_exit(self):
        """A bit flip in the sleeping context (RowHammer-style) must
        abort the restore with a SecurityError, not restore garbage."""
        platform, _flows = enter_drips(TechniqueSet.odrips())
        base = platform.context_region.base
        victim = platform.board.memory._store.read(base, 64)
        platform.board.memory._store.write(
            base, bytes([victim[0] ^ 0x80]) + victim[1:]
        )
        with pytest.raises(SecurityError):
            platform.kernel.run(max_events=100_000)

    def test_metadata_corruption_detected_on_exit(self):
        platform, _flows = enter_drips(TechniqueSet.odrips())
        geometry = platform.mee.geometry
        platform.board.memory._store.write(
            geometry.version_address(0), b"\xff" * 8
        )
        with pytest.raises(SecurityError):
            platform.kernel.run(max_events=100_000)

    def test_violation_counted(self):
        platform, _flows = enter_drips(TechniqueSet.odrips())
        base = platform.context_region.base
        victim = platform.board.memory._store.read(base, 64)
        platform.board.memory._store.write(base, bytes(64))
        with pytest.raises(SecurityError):
            platform.kernel.run(max_events=100_000)
        assert platform.mee.stats.integrity_violations >= 1
        assert victim != bytes(64)


class TestMemoryPowerLoss:
    def test_dram_power_loss_during_sleep_faults_restore(self):
        """If the DRAM loses power mid-sleep the context is gone; the
        exit flow must fail on verification, never hand back zeros."""
        platform, _flows = enter_drips(TechniqueSet.odrips())
        platform.board.memory.power_off()
        platform.board.memory.power_on()  # contents lost
        with pytest.raises((SecurityError, FlowError, MemoryFault)):
            platform.kernel.run(max_events=100_000)

    def test_baseline_sram_power_loss_faults_restore(self):
        platform, _flows = enter_drips(TechniqueSet.baseline())
        platform.sr_srams.power_off()  # retention supply collapsed
        with pytest.raises((FlowError, MemoryFault)):
            platform.kernel.run(max_events=100_000)

    def test_nvm_power_loss_is_harmless(self):
        """eMRAM keeps the context with the supply off — that's the
        whole point of ODRIPS-MRAM."""
        platform, _flows = enter_drips(TechniqueSet.odrips_mram())
        # supply was already removed by the entry flow; cycle it again
        platform.emram.power_off()
        platform.emram.power_on()
        platform.emram.power_off()
        platform.kernel.run(max_events=100_000)
        assert platform.state is PlatformState.ACTIVE


class TestOrderingViolations:
    def test_double_entry_rejected(self):
        platform = build_platform(TechniqueSet.baseline())
        flows = FlowController(platform)
        platform.boot()
        platform.pmu.schedule_timer_event(platform.next_timer_target(5.0))
        flows.request_drips()
        with pytest.raises(FlowError):
            flows.request_drips()
        platform.kernel.run(max_events=100_000)

    def test_access_dram_during_self_refresh_faults(self):
        platform, _flows = enter_drips(TechniqueSet.baseline())
        with pytest.raises(MemoryFault):
            platform.memory_controller.read(0, 64)

    def test_pml_unusable_while_gated(self):
        from repro.errors import IOError_
        from repro.io.pml import PMLMessage

        platform, _flows = enter_drips(TechniqueSet.odrips())
        with pytest.raises(IOError_):
            platform.pml.to_chipset.send(PMLMessage("ping"))
        platform.kernel.run(max_events=100_000)

    def test_frozen_tsc_has_no_deadlines(self):
        from repro.errors import TimerError

        platform, _flows = enter_drips(TechniqueSet.odrips())
        assert platform.pmu.tsc.frozen
        with pytest.raises(TimerError):
            platform.pmu.tsc.time_of_count(10**9, platform.kernel.now)
        platform.kernel.run(max_events=100_000)
