"""Tests for the energy meter."""

import pytest

from repro.errors import MeasurementError
from repro.power.meter import EnergyMeter
from repro.units import SECOND


class TestIntegration:
    def test_constant_power_energy(self):
        meter = EnergyMeter()
        meter.set_power(0, "x", 2.0)
        assert meter.energy("x", up_to_ps=SECOND) == pytest.approx(2.0)

    def test_piecewise_power_energy(self):
        meter = EnergyMeter()
        meter.set_power(0, "x", 1.0)
        meter.set_power(SECOND, "x", 3.0)
        assert meter.energy("x", up_to_ps=2 * SECOND) == pytest.approx(1.0 + 3.0)

    def test_energy_of_unknown_channel_is_zero(self):
        meter = EnergyMeter()
        assert meter.energy("nothing") == 0.0

    def test_total_energy_sums_channels(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 1.0)
        meter.set_power(0, "b", 2.0)
        assert meter.total_energy(up_to_ps=SECOND) == pytest.approx(3.0)

    def test_power_query(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 1.5)
        assert meter.power("a") == 1.5
        assert meter.power("missing") == 0.0

    def test_total_power(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 1.0)
        meter.set_power(0, "b", 0.25)
        assert meter.total_power() == pytest.approx(1.25)

    def test_negative_power_rejected(self):
        meter = EnergyMeter()
        with pytest.raises(MeasurementError):
            meter.set_power(0, "a", -1.0)

    def test_time_going_backwards_rejected(self):
        meter = EnergyMeter()
        meter.set_power(100, "a", 1.0)
        with pytest.raises(MeasurementError):
            meter.set_power(50, "a", 2.0)

    def test_advance_integrates_without_change(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 4.0)
        meter.advance(SECOND // 2)
        assert meter.energy("a") == pytest.approx(2.0)

    def test_channels_view(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 1.0)
        assert meter.channels() == {"a": 1.0}


class TestMarks:
    def test_energy_since_mark(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 1.0)
        meter.mark("m", SECOND)
        assert meter.energy_since("m", 2 * SECOND) == pytest.approx(1.0)

    def test_energy_since_mark_per_channel(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 1.0)
        meter.set_power(0, "b", 2.0)
        meter.mark("m", SECOND)
        assert meter.energy_since("m", 2 * SECOND, channel="b") == pytest.approx(2.0)

    def test_average_power_since_mark(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 1.0)
        meter.mark("m", 0)
        meter.set_power(SECOND, "a", 3.0)
        assert meter.average_power_since("m", 2 * SECOND) == pytest.approx(2.0)

    def test_unknown_mark_rejected(self):
        meter = EnergyMeter()
        with pytest.raises(MeasurementError):
            meter.energy_since("nope", SECOND)

    def test_zero_window_rejected(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 1.0)
        meter.mark("m", SECOND)
        with pytest.raises(MeasurementError):
            meter.average_power_since("m", SECOND)

    def test_channel_created_after_mark_counts_fully(self):
        meter = EnergyMeter()
        meter.set_power(0, "a", 1.0)
        meter.mark("m", SECOND)
        meter.set_power(SECOND, "late", 5.0)
        assert meter.energy_since("m", 2 * SECOND) == pytest.approx(1.0 + 5.0)
