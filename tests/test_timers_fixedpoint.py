"""Tests for the fixed-point arithmetic of the Step / slow timer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TimerError
from repro.timers.fixedpoint import FixedPoint


class TestConstruction:
    def test_from_int_exact(self):
        value = FixedPoint.from_int(7, frac_bits=4)
        assert value.integer_part == 7
        assert value.fraction_raw == 0
        assert value.to_float() == 7.0

    def test_from_float_rounds_to_quantum(self):
        value = FixedPoint.from_float(1.5, frac_bits=1)
        assert value.raw == 3
        assert value.to_float() == 1.5

    def test_from_ratio_is_bit_reinterpretation(self):
        """When denominator is 2^f, the division is just a point placement."""
        n_fast = 1_536_000_123
        value = FixedPoint.from_ratio(n_fast, denominator_pow2=21, frac_bits=21)
        assert value.raw == n_fast
        assert value.integer_part == n_fast >> 21

    def test_from_ratio_with_shift(self):
        value = FixedPoint.from_ratio(5, denominator_pow2=0, frac_bits=3)
        assert value.to_float() == 5.0

    def test_overflow_check(self):
        FixedPoint.from_int(1023, frac_bits=21, int_bits=10)
        with pytest.raises(TimerError):
            FixedPoint.from_int(1024, frac_bits=21, int_bits=10)

    def test_negative_rejected(self):
        with pytest.raises(TimerError):
            FixedPoint(-1, 4)
        with pytest.raises(TimerError):
            FixedPoint.from_float(-0.5, 4)

    def test_quantum(self):
        assert FixedPoint.from_int(0, 21).quantum == pytest.approx(2**-21)


class TestArithmetic:
    def test_addition(self):
        a = FixedPoint.from_float(1.25, 8)
        b = FixedPoint.from_float(2.5, 8)
        assert (a + b).to_float() == pytest.approx(3.75)

    def test_subtraction(self):
        a = FixedPoint.from_float(2.5, 8)
        b = FixedPoint.from_float(1.25, 8)
        assert (a - b).to_float() == pytest.approx(1.25)

    def test_subtraction_underflow_rejected(self):
        a = FixedPoint.from_float(1.0, 8)
        b = FixedPoint.from_float(2.0, 8)
        with pytest.raises(TimerError):
            a - b

    def test_mul_int_exact(self):
        step = FixedPoint.from_float(732.4375, 4)  # exactly representable
        total = step.mul_int(1000)
        assert total.to_float() == pytest.approx(732437.5)

    def test_mismatched_frac_bits_rejected(self):
        a = FixedPoint.from_int(1, 4)
        b = FixedPoint.from_int(1, 8)
        with pytest.raises(TimerError):
            a + b

    def test_comparison_and_hash(self):
        a = FixedPoint.from_int(3, 4)
        b = FixedPoint.from_int(3, 4)
        c = FixedPoint.from_int(4, 4)
        assert a == b
        assert a < c
        assert a <= b
        assert hash(a) == hash(b)

    def test_equality_with_other_types(self):
        assert FixedPoint.from_int(1, 4) != "1"


class TestProperties:
    @given(st.floats(min_value=0, max_value=1000), st.integers(min_value=4, max_value=24))
    @settings(max_examples=60, deadline=None)
    def test_quantization_error_bounded(self, value, frac_bits):
        """from_float is within half a quantum of the true value."""
        fixed = FixedPoint.from_float(value, frac_bits)
        assert abs(fixed.to_float() - value) <= 0.5 * 2**-frac_bits

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_add_matches_integer_math(self, raw_a, raw_b, frac_bits):
        a = FixedPoint(raw_a, frac_bits)
        b = FixedPoint(raw_b, frac_bits)
        assert (a + b).raw == raw_a + raw_b

    @given(st.integers(min_value=0, max_value=2**25), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=60, deadline=None)
    def test_accumulation_is_exact(self, step_raw, count):
        """Accumulating Step k times equals k*step exactly (no float drift)."""
        step = FixedPoint(step_raw, 21)
        accumulated = FixedPoint(0, 21)
        # closed form instead of a loop for large counts
        assert step.mul_int(count).raw == step_raw * count
        for _ in range(min(count, 50)):
            accumulated = accumulated + step
        assert accumulated.raw == step_raw * min(count, 50)
