"""Tests for the chipset: calibration, monitors, wake hub."""

import pytest

from repro.chipset.pch import Chipset
from repro.chipset.wake_hub import WakeHub
from repro.clocks.clock import DerivedClock
from repro.clocks.crystal import CrystalOscillator
from repro.config import DRIPSPowerBudget
from repro.errors import FlowError
from repro.io.wake import WakeEventType
from repro.power.domain import PowerDomain
from repro.sim.signals import Signal
from repro.timers.dual_timer import TimerMode
from repro.units import SECOND


@pytest.fixture
def chipset(kernel):
    fast = CrystalOscillator("x24", 24e6, ppm_error=10.0)
    slow = CrystalOscillator("x32", 32768.0, ppm_error=-5.0)
    domain = PowerDomain("pch")
    pch = Chipset(
        kernel,
        domain,
        DerivedClock("fc", fast),
        DerivedClock("sc", slow),
        DRIPSPowerBudget(),
        timer_frac_bits=21,
        timer_int_bits=10,
    )
    return pch


class TestCalibration:
    def test_calibration_installs_step(self, chipset):
        assert not chipset.calibrated
        chipset.run_step_calibration()
        assert chipset.calibrated
        assert chipset.dual_timer.calibrated

    def test_dual_timer_power_negligible(self, chipset):
        """Sec. 4.2: 'less than 0.001% of the chipset power in DRIPS'."""
        chipset.run_step_calibration()
        budget = DRIPSPowerBudget()
        chipset_total = budget.chipset_aon_w + budget.chipset_wake_monitor_w
        assert chipset.dual_timer_component.power_watts / chipset_total < 1e-4


class TestMonitorClocks:
    def test_slow_monitoring_saves_power(self, chipset):
        budget = DRIPSPowerBudget()
        chipset.monitor_at_fast_clock()
        fast_power = chipset.wake_monitor_component.power_watts
        chipset.monitor_at_slow_clock()
        slow_power = chipset.wake_monitor_component.power_watts
        assert fast_power == pytest.approx(budget.chipset_wake_monitor_w)
        assert slow_power < fast_power / 10

    def test_proc_link_idle(self, chipset):
        chipset.idle_proc_link()
        assert chipset.proc_link_component.power_watts == 0.0
        chipset.resume_proc_link()
        assert chipset.proc_link_component.power_watts > 0.0


class TestGPIOAllocations:
    def test_two_spares_allocated(self, chipset):
        allocations = chipset.gpios.allocations
        assert allocations[chipset.thermal_gpio] == "ec-thermal-wake"
        assert allocations[chipset.fet_gpio] == "aon-io-fet-gate"

    def test_fet_drive(self, chipset):
        chipset.drive_fet(False)
        assert not chipset.gpios.read(chipset.fet_gpio)
        chipset.drive_fet(True)
        assert chipset.gpios.read(chipset.fet_gpio)


class TestThermalOffload:
    def test_thermal_line_wakes_hub(self, chipset, kernel):
        chipset.run_step_calibration()
        events = []
        chipset.wake_hub.set_wake_callback(lambda e: events.append(e))
        # put the hub in ownership (timer in slow mode first)
        chipset.dual_timer.load_fast(kernel.now, 0)
        edge = chipset.dual_timer.next_slow_edge(kernel.now)
        kernel.advance_to(edge)
        chipset.dual_timer.switch_to_slow(edge)
        chipset.wake_hub.take_ownership(timer_target=None)
        line = Signal("ec", initial=False)
        chipset.attach_thermal_line(line)
        chipset.arm_thermal_monitor()
        kernel.schedule(1_000_000, lambda: line.set(True))
        kernel.run()
        assert len(events) == 1
        assert events[0].event_type is WakeEventType.THERMAL

    def test_arm_without_line_rejected(self, chipset):
        chipset._thermal_monitor = None
        with pytest.raises(FlowError):
            chipset.arm_thermal_monitor()


class TestWakeHub:
    def make_hub(self, kernel, chipset):
        chipset.run_step_calibration()
        chipset.dual_timer.load_fast(kernel.now, 0)
        edge = chipset.dual_timer.next_slow_edge(kernel.now)
        kernel.advance_to(edge)
        chipset.dual_timer.switch_to_slow(edge)
        return chipset.wake_hub

    def test_timer_deadline_fires(self, chipset, kernel):
        hub = self.make_hub(kernel, chipset)
        events = []
        hub.set_wake_callback(lambda e: events.append(e))
        target = chipset.dual_timer.read(kernel.now) + 24_000_000  # ~1 s
        wake_ps = hub.take_ownership(target)
        kernel.run()
        assert len(events) == 1
        assert events[0].event_type is WakeEventType.TIMER
        assert events[0].time_ps == wake_ps
        assert not hub.owning

    def test_requires_slow_mode(self, chipset, kernel):
        chipset.run_step_calibration()
        chipset.dual_timer.load_fast(kernel.now, 0)
        with pytest.raises(FlowError):
            chipset.wake_hub.take_ownership(100)

    def test_external_wake_cancels_timer(self, chipset, kernel):
        hub = self.make_hub(kernel, chipset)
        events = []
        hub.set_wake_callback(lambda e: events.append(e))
        target = chipset.dual_timer.read(kernel.now) + 24_000_000
        hub.take_ownership(target)
        hub.external_wake(WakeEventType.NETWORK, "packet")
        kernel.run()
        assert len(events) == 1
        assert events[0].event_type is WakeEventType.NETWORK

    def test_release_cancels_pending(self, chipset, kernel):
        hub = self.make_hub(kernel, chipset)
        events = []
        hub.set_wake_callback(lambda e: events.append(e))
        hub.take_ownership(chipset.dual_timer.read(kernel.now) + 24_000_000)
        hub.release_ownership()
        kernel.run()
        assert events == []

    def test_stale_external_wake_ignored(self, chipset, kernel):
        hub = self.make_hub(kernel, chipset)
        hub.set_wake_callback(lambda e: None)
        hub.external_wake(WakeEventType.NETWORK)  # not owning: dropped
        assert hub.history == []
