"""Tests for the power-management link (PML)."""

import pytest

from repro.errors import IOError_
from repro.io.pads import AONIOBank
from repro.io.pml import PMLChannel, PMLLink, PMLMessage
from repro.power.domain import PowerDomain
from repro.power.gates import BoardFETGate


@pytest.fixture
def link(kernel, fast_clock):
    proc_domain = PowerDomain("proc_io", BoardFETGate("fet"))
    pch_domain = PowerDomain("pch_io")
    proc_pad = AONIOBank(proc_domain).add_pad("pml", 0.001)
    pch_pad = AONIOBank(pch_domain).add_pad("pml", 0.001)
    return PMLLink(kernel, fast_clock, proc_pad, pch_pad), proc_domain


class TestDeterminism:
    def test_transfer_cycles_fixed_by_size(self, link):
        pml, _domain = link
        message = PMLMessage("timer", payload_words=2)
        cycles_a = pml.to_chipset.transfer_cycles(message)
        cycles_b = pml.to_chipset.transfer_cycles(PMLMessage("other", payload_words=2))
        assert cycles_a == cycles_b
        assert cycles_a == PMLChannel.HEADER_CYCLES + 2 * PMLChannel.CYCLES_PER_WORD

    def test_larger_payload_takes_longer(self, link):
        pml, _domain = link
        small = pml.to_chipset.transfer_latency_ps(PMLMessage("m", payload_words=1))
        large = pml.to_chipset.transfer_latency_ps(PMLMessage("m", payload_words=8))
        assert large > small

    def test_compensation_matches_transfer_cycles(self, link):
        """The Sec. 4.1.2 compensation constant IS the deterministic
        transfer time in fast-clock cycles."""
        pml, _domain = link
        message = PMLMessage("timer", payload_words=2)
        assert pml.timer_compensation_cycles() == pml.to_chipset.transfer_cycles(message)


class TestDelivery:
    def test_message_arrives_after_latency(self, link, kernel):
        pml, _domain = link
        received = []
        pml.to_chipset.set_receiver(lambda m: received.append((kernel.now, m.kind)))
        message = PMLMessage("hello", payload_words=1)
        expected = kernel.now + pml.to_chipset.transfer_latency_ps(message)
        delivery = pml.to_chipset.send(message)
        assert delivery == expected
        kernel.run()
        assert received == [(expected, "hello")]

    def test_both_directions_independent(self, link, kernel):
        pml, _domain = link
        seen = []
        pml.to_chipset.set_receiver(lambda m: seen.append("up"))
        pml.to_processor.set_receiver(lambda m: seen.append("down"))
        pml.to_chipset.send(PMLMessage("a"))
        pml.to_processor.send(PMLMessage("b"))
        kernel.run()
        assert sorted(seen) == ["down", "up"]

    def test_send_through_gated_pad_rejected(self, link):
        pml, proc_domain = link
        proc_domain.power_off()
        with pytest.raises(IOError_):
            pml.to_chipset.send(PMLMessage("x"))

    def test_send_with_clock_off_rejected(self, link, fast_crystal):
        pml, _domain = link
        fast_crystal.disable(0)
        with pytest.raises(IOError_):
            pml.to_chipset.send(PMLMessage("x"))

    def test_log_and_count(self, link, kernel):
        pml, _domain = link
        pml.to_chipset.set_receiver(lambda m: None)
        pml.to_chipset.send(PMLMessage("one"))
        pml.to_chipset.send(PMLMessage("two"))
        kernel.run()
        assert pml.to_chipset.messages_sent == 2
        assert [m.kind for m in pml.to_chipset.log] == ["one", "two"]
