"""Tests for the system agent and its context-flushing FSMs."""

import pytest

from repro.errors import FlowError
from repro.memory.controller import MemoryController
from repro.memory.dram import DRAMDevice
from repro.memory.region import MemoryRegion
from repro.processor.system_agent import SystemAgent
from repro.sgx.cache import MEECache
from repro.sgx.integrity_tree import TreeGeometry
from repro.sgx.mee import MemoryEncryptionEngine
from repro.units import GIB

REGION_BASE = 1 << 20


def make_sa(protected=True, context_bytes=8 * 1024):
    dram = DRAMDevice("dram", capacity_bytes=1 * GIB)
    controller = MemoryController("mc", dram)
    if protected:
        geometry = TreeGeometry.for_data_size(REGION_BASE, 2 * context_bytes)
        mee = MemoryEncryptionEngine(dram, geometry, b"k" * 32, MEECache())
        mee.initialize_region()
        controller.attach_mee(
            mee, MemoryRegion(REGION_BASE, geometry.data_blocks * 64)
        )
    sa = SystemAgent(controller, context_bytes)
    sa.configure_fsms(REGION_BASE, REGION_BASE + context_bytes)
    return sa, dram


class TestContext:
    def test_capture_changes_each_generation(self):
        sa, _ = make_sa()
        first = sa.capture_context()
        second = sa.capture_context()
        assert first != second
        assert len(first) == sa.context_bytes

    def test_verify_rejects_stale(self):
        sa, _ = make_sa()
        old = sa.capture_context()
        sa.capture_context()
        with pytest.raises(FlowError):
            sa.verify_restored(old)

    def test_verify_without_capture_rejected(self):
        sa, _ = make_sa()
        with pytest.raises(FlowError):
            sa.verify_restored(b"x")


class TestFSMs:
    def test_flush_restore_roundtrip_through_mee(self):
        sa, dram = make_sa()
        blob = sa.capture_context()
        latency = sa.sa_fsm_flush(blob)
        assert latency > 0
        restored, read_latency = sa.sa_fsm_restore(len(blob))
        assert restored == blob
        assert read_latency > 0
        # protected: the at-rest bytes differ from the plaintext
        assert dram._store.read(REGION_BASE, 64) != blob[:64]

    def test_llc_fsm_uses_second_base_address(self):
        sa, _ = make_sa()
        sa_blob = sa.capture_context()
        compute_blob = bytes(range(256)) * 16
        sa.sa_fsm_flush(sa_blob)
        sa.llc_fsm_flush(compute_blob)
        restored_sa, _ = sa.sa_fsm_restore(len(sa_blob))
        restored_compute, _ = sa.llc_fsm_restore(len(compute_blob))
        assert restored_sa == sa_blob
        assert restored_compute == compute_blob

    def test_unprotected_fallback_path(self):
        """Without an MEE the FSMs fall back to plain controller writes
        (the chipset-SRAM and eMRAM configurations never hit this, but
        the SA must not crash on an unprotected region)."""
        sa, dram = make_sa(protected=False)
        blob = sa.capture_context()
        sa.sa_fsm_flush(blob)
        restored, _ = sa.sa_fsm_restore(len(blob))
        assert restored == blob
        # unprotected: plaintext at rest
        assert dram._store.read(REGION_BASE, 64) == blob[:64]

    def test_unconfigured_fsms_rejected(self):
        dram = DRAMDevice("dram", capacity_bytes=1 * GIB)
        sa = SystemAgent(MemoryController("mc", dram), 1024)
        with pytest.raises(FlowError):
            sa.sa_fsm_flush(b"x")
        with pytest.raises(FlowError):
            sa.configure_fsms(-1, 0)

    def test_stats_count_protected_traffic(self):
        sa, _ = make_sa()
        blob = sa.capture_context()
        sa.sa_fsm_flush(blob)
        sa.sa_fsm_restore(len(blob))
        stats = sa.controller.stats
        assert stats.protected_writes == 1
        assert stats.protected_reads == 1
        assert stats.bytes_written == len(blob)
