"""Tests for the high-level API: ODRIPSController and measurements."""

import pytest

from repro.analysis.breakeven import find_break_even, residency_sweep
from repro.core.odrips import ODRIPSController, StandbyMeasurement
from repro.core.techniques import TechniqueSet
from repro.errors import ConfigError

from _platform import small_context_config


class TestController:
    def test_build_platform_uses_technique_set(self):
        controller = ODRIPSController(TechniqueSet.odrips(), config=small_context_config())
        platform = controller.build_platform()
        assert platform.techniques.is_full_odrips
        assert platform.mee is not None

    def test_build_platform_cache_geometry_kwargs(self):
        controller = ODRIPSController(
            TechniqueSet.ctx_sgx_dram_only(), config=small_context_config()
        )
        platform = controller.build_platform(mee_cache_sets=4, mee_cache_ways=2)
        assert platform.mee.cache.capacity == 8

    def test_default_is_baseline(self):
        assert ODRIPSController().techniques.is_baseline

    def test_measure_returns_labelled_measurement(self):
        controller = ODRIPSController(config=small_context_config())
        measurement = controller.measure(cycles=1, idle_interval_s=0.5,
                                         maintenance_s=0.02)
        assert measurement.label == "Baseline (DRIPS)"
        assert measurement.average_power_w > 0
        assert measurement.entry_latency_us > 0

    def test_measure_with_levers(self):
        controller = ODRIPSController(
            TechniqueSet.odrips(), config=small_context_config()
        )
        fast = controller.measure(cycles=1, idle_interval_s=0.5, maintenance_s=0.05,
                                  core_freq_ghz=2.0)
        slow = controller.measure(cycles=1, idle_interval_s=0.5, maintenance_s=0.05,
                                  core_freq_ghz=0.8)
        assert fast.average_power_w != slow.average_power_w

    def test_measure_raw_periodic(self):
        controller = ODRIPSController(config=small_context_config())
        result = controller.measure_raw_periodic(
            cycles=2, maintenance_s=0.02, period_s=0.05, idle_s=0.03
        )
        assert result.cycles == 2


class TestStandbyMeasurement:
    def test_saving_vs(self):
        base = StandbyMeasurement("base", 0.100, 0.06, 0.99, 3.0, 200, 300, {})
        better = StandbyMeasurement("x", 0.078, 0.05, 0.99, 3.0, 200, 300, {})
        assert better.saving_vs(base) == pytest.approx(0.22)

    def test_from_result_averages_latencies(self):
        from repro.measure.residency import ResidencyReport
        from repro.workloads.standby import StandbyResult

        report = ResidencyReport(window_ps=10**12, dwell_ps={"drips": 10**12},
                                 energy_j={"drips": 0.06})
        result = StandbyResult(
            cycles=1, window_start_ps=0, window_end_ps=10**12,
            average_power_w=0.06, residency=report,
            entry_latencies_ps=[100_000_000, 300_000_000],
            exit_latencies_ps=[200_000_000],
        )
        measurement = StandbyMeasurement.from_result("x", result)
        assert measurement.entry_latency_us == pytest.approx(200.0)
        assert measurement.exit_latency_us == pytest.approx(200.0)


class TestBreakEvenAPI:
    def test_baseline_break_even_rejected(self):
        with pytest.raises(ConfigError):
            find_break_even(TechniqueSet.baseline())

    def test_bad_idle_points_rejected(self):
        with pytest.raises(ConfigError):
            find_break_even(
                TechniqueSet.odrips(), idle_points_s=(0.06, 0.02)
            )

    def test_residency_sweep_returns_triples(self):
        points = residency_sweep(
            TechniqueSet.wake_up_off_only(), [0.01, 0.05], cycles=2
        )
        assert len(points) == 2
        for idle_s, base_w, tech_w in points:
            assert base_w > 0 and tech_w > 0
        # at 50 ms the technique clearly wins (break-even is ~6.6 ms)
        assert points[1][2] < points[1][1]
