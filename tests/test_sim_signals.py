"""Tests for signals and edge detection."""

from repro.sim.signals import EdgeDetector, Signal, latch_on_rising


class TestSignal:
    def test_initial_value(self):
        signal = Signal("s", initial=5)
        assert signal.value == 5

    def test_set_changes_value(self):
        signal = Signal("s")
        signal.set(7)
        assert signal.value == 7

    def test_watcher_sees_old_and_new(self):
        signal = Signal("s", initial=1)
        seen = []
        signal.watch(lambda s, old, new: seen.append((old, new)))
        signal.set(2)
        assert seen == [(1, 2)]

    def test_no_notification_on_same_value(self):
        signal = Signal("s", initial=3)
        seen = []
        signal.watch(lambda s, old, new: seen.append(new))
        signal.set(3)
        assert seen == []
        assert signal.change_count == 0

    def test_unsubscribe_stops_notifications(self):
        signal = Signal("s")
        seen = []
        unsubscribe = signal.watch(lambda s, old, new: seen.append(new))
        signal.set(1)
        unsubscribe()
        signal.set(2)
        assert seen == [1]

    def test_unsubscribe_twice_is_safe(self):
        signal = Signal("s")
        unsubscribe = signal.watch(lambda s, old, new: None)
        unsubscribe()
        unsubscribe()

    def test_boolean_helpers(self):
        signal = Signal("s", initial=False)
        signal.assert_()
        assert bool(signal)
        signal.deassert()
        assert not bool(signal)

    def test_change_count(self):
        signal = Signal("s", initial=0)
        for value in (1, 2, 2, 3):
            signal.set(value)
        assert signal.change_count == 3

    def test_multiple_watchers_all_fire(self):
        signal = Signal("s")
        counts = [0, 0]
        signal.watch(lambda *a: counts.__setitem__(0, counts[0] + 1))
        signal.watch(lambda *a: counts.__setitem__(1, counts[1] + 1))
        signal.set(1)
        assert counts == [1, 1]


class TestEdgeDetector:
    def test_counts_rising_and_falling(self):
        signal = Signal("s", initial=False)
        detector = EdgeDetector(signal)
        signal.set(True)
        signal.set(False)
        signal.set(True)
        assert detector.rising == 2
        assert detector.falling == 1

    def test_detach_stops_counting(self):
        signal = Signal("s", initial=False)
        detector = EdgeDetector(signal)
        detector.detach()
        signal.set(True)
        assert detector.rising == 0


class TestLatchOnRising:
    def test_fires_only_on_rising(self):
        signal = Signal("s", initial=False)
        fired = []
        latch_on_rising(signal, lambda: fired.append(1))
        signal.set(True)
        signal.set(False)
        signal.set(True)
        assert len(fired) == 2

    def test_unsubscribe(self):
        signal = Signal("s", initial=False)
        fired = []
        unsubscribe = latch_on_rising(signal, lambda: fired.append(1))
        unsubscribe()
        signal.set(True)
        assert fired == []
