"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Kernel


class TestScheduling:
    def test_time_starts_at_zero(self, kernel):
        assert kernel.now == 0
        assert kernel.now_seconds == 0.0

    def test_schedule_and_run_advances_time(self, kernel):
        fired = []
        kernel.schedule(1000, lambda: fired.append(kernel.now))
        kernel.run()
        assert fired == [1000]
        assert kernel.now == 1000

    def test_events_fire_in_time_order(self, kernel):
        order = []
        kernel.schedule(300, lambda: order.append("c"))
        kernel.schedule(100, lambda: order.append("a"))
        kernel.schedule(200, lambda: order.append("b"))
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self, kernel):
        order = []
        for name in "abcd":
            kernel.schedule(500, lambda n=name: order.append(n))
        kernel.run()
        assert order == ["a", "b", "c", "d"]

    def test_call_soon_runs_at_current_time(self, kernel):
        times = []
        kernel.schedule(100, lambda: kernel.call_soon(lambda: times.append(kernel.now)))
        kernel.run()
        assert times == [100]

    def test_negative_delay_rejected(self, kernel):
        with pytest.raises(SimulationError):
            kernel.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self, kernel):
        kernel.schedule(100, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.schedule_at(50, lambda: None)

    def test_events_scheduled_during_run_execute(self, kernel):
        seen = []

        def first():
            kernel.schedule(50, lambda: seen.append(kernel.now))

        kernel.schedule(100, first)
        kernel.run()
        assert seen == [150]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, kernel):
        fired = []
        event = kernel.schedule(100, lambda: fired.append(1))
        event.cancel()
        kernel.run()
        assert fired == []

    def test_cancel_is_idempotent(self, kernel):
        event = kernel.schedule(100, lambda: None)
        event.cancel()
        event.cancel()
        assert not event.pending

    def test_pending_reflects_lifecycle(self, kernel):
        event = kernel.schedule(100, lambda: None)
        assert event.pending
        kernel.run()
        assert not event.pending
        assert event.fired

    def test_pending_events_excludes_cancelled(self, kernel):
        keep = kernel.schedule(100, lambda: None)
        drop = kernel.schedule(200, lambda: None)
        drop.cancel()
        assert kernel.pending_events == 1
        assert keep.pending


class TestRunControl:
    def test_run_until_stops_before_later_events(self, kernel):
        fired = []
        kernel.schedule(100, lambda: fired.append("early"))
        kernel.schedule(10_000, lambda: fired.append("late"))
        kernel.run(until_ps=5000)
        assert fired == ["early"]
        assert kernel.now == 5000  # advanced to the window edge exactly

    def test_run_until_then_resume(self, kernel):
        fired = []
        kernel.schedule(10_000, lambda: fired.append("late"))
        kernel.run(until_ps=5000)
        kernel.run()
        assert fired == ["late"]

    def test_run_max_events(self, kernel):
        fired = []
        for index in range(5):
            kernel.schedule(100 + index, lambda i=index: fired.append(i))
        kernel.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_halts_run(self, kernel):
        fired = []

        def first():
            fired.append(1)
            kernel.stop()

        kernel.schedule(100, first)
        kernel.schedule(200, lambda: fired.append(2))
        kernel.run()
        assert fired == [1]
        assert kernel.pending_events == 1

    def test_run_is_not_reentrant(self, kernel):
        error = {}

        def reenter():
            try:
                kernel.run()
            except SimulationError as exc:
                error["raised"] = exc

        kernel.schedule(100, reenter)
        kernel.run()
        assert "raised" in error

    def test_events_fired_counter(self, kernel):
        for delay in (10, 20, 30):
            kernel.schedule(delay, lambda: None)
        kernel.run()
        assert kernel.events_fired == 3

    def test_step_returns_false_when_empty(self, kernel):
        assert kernel.step() is False


class TestCancellationStorms:
    def test_storm_at_heap_head(self, kernel):
        """Many cancelled events at the head must not hide the survivor."""
        doomed = [kernel.schedule(100, lambda: None) for _ in range(500)]
        survivor = kernel.schedule(200, lambda: None)
        for event in doomed:
            event.cancel()
        assert kernel.pending_events == 1
        assert kernel.next_event_time() == 200
        fired = kernel.run()
        assert fired == 1
        assert kernel.events_fired == 1
        assert survivor.fired

    def test_next_event_time_discards_cancelled_head(self, kernel):
        for _ in range(10):
            kernel.schedule(50, lambda: None).cancel()
        kernel.schedule(75, lambda: None)
        assert kernel.next_event_time() == 75
        # lazy cleanup dropped the cancelled entries from the queue head
        assert kernel.next_event_time() == 75

    def test_cancel_twice_counts_once(self, kernel):
        event = kernel.schedule(100, lambda: None)
        kernel.schedule(200, lambda: None)
        event.cancel()
        event.cancel()
        assert kernel.pending_events == 1

    def test_cancel_after_fire_keeps_accounting(self, kernel):
        event = kernel.schedule(100, lambda: None)
        kernel.schedule(200, lambda: None)
        kernel.run(max_events=1)
        event.cancel()  # no-op: already fired
        assert kernel.pending_events == 1
        assert kernel.events_fired == 1

    def test_storm_interleaved_with_fires(self, kernel):
        fired = []
        events = [
            kernel.schedule(10 * (index + 1), lambda i=index: fired.append(i))
            for index in range(100)
        ]
        for event in events[::2]:
            event.cancel()
        assert kernel.pending_events == 50
        assert kernel.run() == 50
        assert fired == list(range(1, 100, 2))
        assert kernel.pending_events == 0
        assert kernel.events_fired == 50


class TestStopMidRun:
    def test_stop_leaves_queue_consistent(self, kernel):
        fired = []

        def second():
            fired.append(2)
            kernel.stop()

        kernel.schedule(100, lambda: fired.append(1))
        kernel.schedule(200, second)
        kernel.schedule(300, lambda: fired.append(3))
        kernel.schedule(400, lambda: fired.append(4))
        assert kernel.run() == 2
        assert fired == [1, 2]
        assert kernel.pending_events == 2
        assert kernel.next_event_time() == 300
        assert kernel.events_fired == 2

    def test_resume_after_stop(self, kernel):
        fired = []
        kernel.schedule(100, lambda: (fired.append(1), kernel.stop()))
        kernel.schedule(200, lambda: fired.append(2))
        kernel.run()
        kernel.run()
        assert fired == [1, 2]
        assert kernel.pending_events == 0

    def test_stop_skips_until_window_extension(self, kernel):
        """A stopped run must not jump time forward to until_ps."""
        kernel.schedule(100, lambda: kernel.stop())
        kernel.schedule(900, lambda: None)
        kernel.run(until_ps=500)
        assert kernel.now == 100


class TestAdvanceTo:
    def test_advance_over_idle_gap(self, kernel):
        kernel.advance_to(12345)
        assert kernel.now == 12345

    def test_advance_backwards_rejected(self, kernel):
        kernel.advance_to(100)
        with pytest.raises(SimulationError):
            kernel.advance_to(50)

    def test_advance_over_pending_event_rejected(self, kernel):
        kernel.schedule(100, lambda: None)
        with pytest.raises(SimulationError):
            kernel.advance_to(200)

    def test_advance_over_cancelled_event_allowed(self, kernel):
        event = kernel.schedule(100, lambda: None)
        event.cancel()
        kernel.advance_to(200)
        assert kernel.now == 200

    def test_advance_exactly_onto_pending_event(self, kernel):
        """Advancing to exactly a pending event's timestamp is legal: the
        event has not been skipped — it still fires at that time."""
        fired = []
        kernel.schedule(100, lambda: fired.append(kernel.now))
        kernel.advance_to(100)
        assert kernel.now == 100
        assert kernel.pending_events == 1
        kernel.run()
        assert fired == [100]

    def test_advance_through_cancellation_storm(self, kernel):
        for _ in range(100):
            kernel.schedule(50, lambda: None).cancel()
        kernel.schedule(500, lambda: None)
        kernel.advance_to(400)  # cancelled events at t=50 are not pending
        assert kernel.now == 400

    def test_next_event_time(self, kernel):
        assert kernel.next_event_time() is None
        kernel.schedule(500, lambda: None)
        kernel.schedule(300, lambda: None)
        assert kernel.next_event_time() == 300
