"""Cross-cutting property-based tests on core invariants."""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.clocks.clock import DerivedClock
from repro.clocks.crystal import CrystalOscillator
from repro.memory.dram import DRAMDevice
from repro.power.meter import EnergyMeter
from repro.sgx.cache import MEECache
from repro.sgx.integrity_tree import TreeGeometry
from repro.sgx.mee import MemoryEncryptionEngine
from repro.timers.calibration import StepCalibrator
from repro.timers.dual_timer import ChipsetDualTimer
from repro.units import PICOSECONDS_PER_SECOND, SECOND


class TestMeterProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=10**9),  # duration steps
                st.floats(min_value=0, max_value=10.0),     # power level
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_integration_matches_sum_of_rectangles(self, steps):
        """Meter energy == sum(power * duration) for any step sequence."""
        meter = EnergyMeter()
        now = 0
        expected = 0.0
        previous_power = 0.0
        for duration, power in steps:
            meter.set_power(now, "x", power)
            expected_piece = power * duration / PICOSECONDS_PER_SECOND
            now += duration
            expected += expected_piece
            previous_power = power
        assert meter.energy("x", up_to_ps=now) == pytest.approx(expected, rel=1e-12, abs=1e-15)

    @given(
        st.lists(st.floats(min_value=0, max_value=5.0), min_size=2, max_size=10),
        st.integers(min_value=1, max_value=10**10),
    )
    @settings(max_examples=30, deadline=None)
    def test_total_equals_sum_of_channels(self, powers, window):
        meter = EnergyMeter()
        for index, power in enumerate(powers):
            meter.set_power(0, f"ch{index}", power)
        total = meter.total_energy(up_to_ps=window)
        parts = sum(meter.energy(f"ch{index}") for index in range(len(powers)))
        assert total == pytest.approx(parts)


class TestTimerProperties:
    @given(
        fast_ppm=st.floats(min_value=-150, max_value=150),
        slow_ppm=st.floats(min_value=-150, max_value=150),
        reads=st.lists(st.integers(min_value=1, max_value=10**12), min_size=2, max_size=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_slow_mode_reads_monotonic_nondecreasing(self, fast_ppm, slow_ppm, reads):
        fast = CrystalOscillator("f", 24e6, ppm_error=fast_ppm)
        slow = CrystalOscillator("s", 32768.0, ppm_error=slow_ppm)
        calibrator = StepCalibrator.for_precision(fast, slow)
        timer = ChipsetDualTimer(
            "t", DerivedClock("fc", fast), DerivedClock("sc", slow),
            frac_bits=calibrator.frac_bits,
        )
        timer.set_step(calibrator.run(0).step)
        timer.load_fast(0, 0)
        edge = timer.next_slow_edge(0)
        timer.switch_to_slow(edge)
        now = edge
        previous = timer.read(now)
        for delta in reads:
            now += delta
            value = timer.read(now)
            assert value >= previous
            previous = value

    @given(
        target_s=st.floats(min_value=0.001, max_value=100.0),
        fast_ppm=st.floats(min_value=-100, max_value=100),
    )
    @settings(max_examples=25, deadline=None)
    def test_slow_mode_deadline_is_tight(self, target_s, fast_ppm):
        """time_of_count returns the FIRST slow edge meeting the target."""
        fast = CrystalOscillator("f", 24e6, ppm_error=fast_ppm)
        slow = CrystalOscillator("s", 32768.0)
        calibrator = StepCalibrator.for_precision(fast, slow)
        timer = ChipsetDualTimer(
            "t", DerivedClock("fc", fast), DerivedClock("sc", slow),
            frac_bits=calibrator.frac_bits,
        )
        timer.set_step(calibrator.run(0).step)
        timer.load_fast(0, 0)
        edge = timer.next_slow_edge(0)
        timer.switch_to_slow(edge)
        target = timer.read(edge) + round(target_s * 24e6)
        when = timer.time_of_count(target, edge)
        assert timer.read(when) >= target
        if when - slow.period_ps > edge:
            assert timer.read(when - slow.period_ps) < target


class MEEStateMachine(RuleBasedStateMachine):
    """Stateful test: the MEE behaves like a plain byte store with
    verification, across arbitrary interleavings of reads, writes and
    power cycles."""

    def __init__(self):
        super().__init__()
        device = DRAMDevice("dram", capacity_bytes=64 * (1 << 20))
        geometry = TreeGeometry.for_data_size(1 << 20, 4096)
        self.mee = MemoryEncryptionEngine(device, geometry, b"k" * 32, MEECache(4, 2))
        self.mee.initialize_region()
        self.shadow = bytearray(4096)

    @rule(offset=st.integers(0, 4000), data=st.binary(min_size=1, max_size=96))
    def write(self, offset, data):
        data = data[: 4096 - offset]
        if not data:
            return
        self.mee.write(offset, data)
        self.shadow[offset : offset + len(data)] = data

    @rule(offset=st.integers(0, 4000), length=st.integers(1, 96))
    def read(self, offset, length):
        length = min(length, 4096 - offset)
        got, _latency = self.mee.read(offset, length)
        assert got == bytes(self.shadow[offset : offset + length])

    @rule()
    def power_cycle(self):
        state = self.mee.power_off()
        self.mee.power_on(state)

    @invariant()
    def root_counter_counts_writes(self):
        assert self.mee.tree.root_counter == self.mee.stats.blocks_written


TestMEEStateMachine = MEEStateMachine.TestCase
TestMEEStateMachine.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)


class TestKernelOrderingProperty:
    @given(
        delays=st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=60)
    )
    @settings(max_examples=40, deadline=None)
    def test_events_always_fire_in_timestamp_then_fifo_order(self, delays):
        from repro.sim.kernel import Kernel

        kernel = Kernel()
        fired = []
        for index, delay in enumerate(delays):
            kernel.schedule(delay, lambda i=index, d=delay: fired.append((d, i)))
        kernel.run()
        # sorted by (time, insertion order) == stable sort by time
        assert fired == sorted(fired)

    @given(
        delays=st.lists(st.integers(min_value=1, max_value=10**6), min_size=2, max_size=30),
        cancel_every=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_cancelled_events_never_fire(self, delays, cancel_every):
        from repro.sim.kernel import Kernel

        kernel = Kernel()
        fired = []
        events = [
            kernel.schedule(delay, lambda i=index: fired.append(i))
            for index, delay in enumerate(delays)
        ]
        cancelled = {
            index for index in range(len(events)) if index % cancel_every == 0
        }
        for index in cancelled:
            events[index].cancel()
        kernel.run()
        assert cancelled.isdisjoint(fired)
        assert len(fired) == len(delays) - len(cancelled)


class TestPowerTreeConservation:
    @given(
        loads=st.lists(st.floats(min_value=0, max_value=0.1), min_size=1, max_size=12)
    )
    @settings(max_examples=40, deadline=None)
    def test_breakdown_sums_to_platform_power(self, loads):
        from repro.power.tree import PowerTree
        from repro.sim.kernel import Kernel

        tree = PowerTree(Kernel())
        rail = tree.new_rail("r", 1.0)
        domain = rail.new_domain("d")
        for index, load in enumerate(loads):
            domain.new_component(f"c{index}", load)
        breakdown = tree.attributed_breakdown()
        assert sum(breakdown.values()) == pytest.approx(tree.platform_power())
