"""Regression-watchdog tests: policies, report building, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.obs.runlog import RUNLOG_DIR_ENV, RunLog
from repro.regress import (
    BENCH_POLICIES,
    EXIT_DRIFT,
    EXIT_OK,
    EXIT_USAGE,
    bench_policies,
    build_report,
    golden_policies,
    load_baseline,
    render_html,
    render_text,
)


@pytest.fixture
def store(tmp_path, monkeypatch):
    """An isolated flight-recorder store (env-selected) plus its RunLog."""
    directory = tmp_path / "runs"
    monkeypatch.setenv(RUNLOG_DIR_ENV, str(directory))
    return RunLog(directory)


def fig2_record(drips_power_mw: float = 60.0) -> dict:
    return {
        "experiment": "fig2",
        "fingerprint": "f" * 64,
        "metrics": {
            "average_power_mw": 74.4,
            "drips_power_mw": drips_power_mw,
            "active_power_w": 3.04,
            "drips_residency": 0.995,
        },
    }


def bench_file(tmp_path, **overrides):
    figures = {
        "analyzer_fast_path": {"speedup": 1500.0},
        "memoized_experiment": {"speedup": 37.0},
        "parallel_sweep_fig6b": {"speedup": 2.0},
        "tracer_overhead_fig2": {"enabled_overhead_frac": 0.08},
    }
    for bench, fields in overrides.items():
        figures.setdefault(bench, {}).update(fields)
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"schema": "repro-bench-perf/1", "benches": figures}))
    return path


class TestPolicies:
    def test_golden_catalog_covers_registered_drivers(self):
        catalog = golden_policies()
        assert "fig2" in catalog
        assert "table1" not in catalog  # golden-exempt
        keys = {golden.key for golden in catalog["fig2"]}
        assert "drips_power_mw" in keys

    def test_golden_override_replaces_fields(self):
        catalog = golden_policies(
            {"fig2": {"drips_power_mw": {"paper": 90.0, "tolerance": 0.1}}}
        )
        golden = next(g for g in catalog["fig2"] if g.key == "drips_power_mw")
        assert golden.paper == 90.0
        assert golden.tolerance == 0.1
        assert golden.kind == "absolute"  # untouched field survives

    def test_golden_override_rejects_unknown_field(self):
        with pytest.raises(ConfigError, match="unknown baseline field"):
            golden_policies({"fig2": {"drips_power_mw": {"papr": 90.0}}})

    def test_golden_override_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown kind"):
            golden_policies({"fig2": {"drips_power_mw": {"kind": "fuzzy"}}})

    def test_bench_catalog_and_override(self):
        assert any(p.bench == "tracer_overhead_fig2" for p in BENCH_POLICIES)
        policies = bench_policies(
            {"analyzer_fast_path": {"speedup": {"limit": 99999.0}}}
        )
        policy = next(p for p in policies
                      if (p.bench, p.metric) == ("analyzer_fast_path", "speedup"))
        assert policy.limit == 99999.0

    def test_bench_policy_floor_and_ceiling(self):
        floor = next(p for p in BENCH_POLICIES if p.kind == "floor")
        assert floor.evaluate(floor.limit + 1.0)["within"] is True
        assert floor.evaluate(floor.limit - 1.0)["within"] is False
        ceiling = next(p for p in BENCH_POLICIES if p.kind == "ceiling")
        assert ceiling.evaluate(ceiling.limit - 0.01)["within"] is True
        assert ceiling.evaluate(ceiling.limit + 0.01)["within"] is False


class TestBuildReport:
    def test_clean_report(self, tmp_path, store):
        store.append(fig2_record())
        report = build_report(bench_path=bench_file(tmp_path))
        assert report["ok"] is True
        assert report["drift"] == 0
        fig2 = [f for f in report["findings"] if f.get("experiment") == "fig2"]
        assert len(fig2) == 4
        assert all(f["within"] for f in fig2)
        assert any(f["source"] == "bench" for f in report["findings"])

    def test_perturbed_golden_drifts(self, tmp_path, store):
        store.append(fig2_record())
        report = build_report(
            bench_path=bench_file(tmp_path),
            baseline={"goldens": {"fig2": {"drips_power_mw": {"paper": 90.0}}}},
        )
        assert report["ok"] is False
        drifted = [f for f in report["findings"] if not f["within"]]
        assert [(f["experiment"], f["key"]) for f in drifted] == [
            ("fig2", "drips_power_mw")
        ]

    def test_out_of_tolerance_metric_drifts(self, tmp_path, store):
        store.append(fig2_record(drips_power_mw=75.0))
        report = build_report(bench_path=bench_file(tmp_path))
        assert report["ok"] is False

    def test_latest_record_wins(self, tmp_path, store):
        store.append(fig2_record(drips_power_mw=75.0))  # old, drifted
        store.append(fig2_record(drips_power_mw=60.0))  # latest, clean
        report = build_report(bench_path=bench_file(tmp_path))
        assert report["ok"] is True

    def test_unrun_experiments_are_skipped_not_drift(self, tmp_path, store):
        store.append(fig2_record())
        report = build_report(bench_path=bench_file(tmp_path))
        skipped = {entry.get("experiment") for entry in report["missing"]}
        assert "fig6a" in skipped
        assert report["ok"] is True

    def test_missing_bench_file_skips_bench_checks(self, store):
        store.append(fig2_record())
        report = build_report(bench_path="does-not-exist.json")
        assert report["ok"] is True
        assert all(f["source"] != "bench" for f in report["findings"])
        assert any(e["source"] == "bench" for e in report["missing"])

    def test_bench_below_floor_drifts(self, tmp_path, store):
        store.append(fig2_record())
        bench = bench_file(tmp_path, parallel_sweep_fig6b={"speedup": 0.9})
        report = build_report(bench_path=bench)
        drifted = [f for f in report["findings"] if not f["within"]]
        assert [(f["bench"], f["metric"]) for f in drifted] == [
            ("parallel_sweep_fig6b", "speedup")
        ]

    def test_bench_policy_skip_marker_skips_not_drifts(self, tmp_path, store):
        """A single-CPU harness records speedup with a policy_skip reason."""
        store.append(fig2_record())
        bench = bench_file(
            tmp_path,
            parallel_sweep_fig6b={
                "speedup": 0.9,
                "cpu_count": 1,
                "policy_skip": "single-CPU host: the speedup floor does not apply",
            },
        )
        report = build_report(bench_path=bench)
        assert report["ok"] is True
        skipped = [e for e in report["missing"] if e.get("bench") == "parallel_sweep_fig6b"]
        assert len(skipped) == 1
        assert "single-CPU host" in skipped[0]["reason"]

    def test_metric_absent_from_record_is_skipped(self, tmp_path, store):
        record = fig2_record()
        del record["metrics"]["drips_residency"]
        store.append(record)
        report = build_report(bench_path=bench_file(tmp_path))
        assert report["ok"] is True
        assert any(entry.get("key") == "drips_residency"
                   for entry in report["missing"])


class TestRendering:
    def test_text_verdict_lines(self, tmp_path, store):
        store.append(fig2_record())
        report = build_report(bench_path=bench_file(tmp_path))
        text = render_text(report)
        assert "Paper-fidelity goldens" in text
        assert "Benchmark policies" in text
        assert text.strip().splitlines()[-1].startswith("OK:")

    def test_text_flags_drift(self, tmp_path, store):
        store.append(fig2_record(drips_power_mw=75.0))
        text = render_text(build_report(bench_path=bench_file(tmp_path)))
        assert "DRIFT" in text

    def test_html_renders_and_escapes(self, tmp_path, store):
        store.append(fig2_record())
        report = build_report(bench_path=bench_file(tmp_path))
        report["runlog"] = "<script>alert(1)</script>"
        html = render_html(report)
        assert html.startswith("<!DOCTYPE html>")
        assert "<script>alert(1)</script>" not in html
        assert "drips_power_mw" in html


class TestBaselineLoading:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"goldens": {}}')
        assert load_baseline(path) == {"goldens": {}}

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_baseline(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_baseline(path)

    def test_unknown_top_level_key(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"golden": {}}')
        with pytest.raises(ConfigError, match="unknown top-level"):
            load_baseline(path)


class TestCli:
    def test_report_json_roundtrip(self, tmp_path, store, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        bench_file(tmp_path)
        assert main(["fig2", "--cycles", "1"]) == EXIT_OK
        capsys.readouterr()
        assert main(["report", "--json"]) == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro-regress/1"
        assert report["ok"] is True
        fig2 = [f for f in report["findings"] if f.get("experiment") == "fig2"]
        assert len(fig2) == 4
        assert all(len(f["fingerprint"]) == 64 for f in fig2)
        # tmp_path is not a repo, so the stamp is None — but it is carried
        assert all("git_rev" in f for f in fig2)

    def test_report_exit_nonzero_on_perturbed_golden(
        self, tmp_path, store, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        store.append(fig2_record())
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"goldens": {"fig2": {"drips_power_mw": {"paper": 90.0}}}}
        ))
        assert main(["report", "--baseline", str(baseline)]) == EXIT_DRIFT
        assert "DRIFT" in capsys.readouterr().out

    def test_report_html_output(self, tmp_path, store, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        store.append(fig2_record())
        page = tmp_path / "report.html"
        assert main(["report", "--html", str(page)]) == EXIT_OK
        assert page.read_text().startswith("<!DOCTYPE html>")

    def test_report_bad_baseline_is_usage_error(
        self, tmp_path, store, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        assert main(["report", "--baseline", str(bad)]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_no_runlog_opts_out(self, tmp_path, store, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["fig2", "--cycles", "1", "--no-runlog"]) == 0
        assert len(store) == 0

    def test_runs_are_recorded_by_default(self, tmp_path, store, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["fig2", "--cycles", "1"]) == 0
        records = store.records()
        assert [r["experiment"] for r in records] == ["fig2"]
        assert records[0]["git_rev"] is None  # tmp_path is not a repo
