"""Causal wake-attribution tests: edges, chains, rollups, export.

Covers the causal layer end to end: the causal edges the instrumented
seams record, the wake-chain graph and per-cause energy rollups of
``repro.obs.causal``, the flow critical-path decomposition, the
Perfetto export of MACRO_TRACK summary spans and flow arrows
(round-trip: export -> parse JSON -> causal edges intact), and the
purity gate — measurements are bit-for-bit identical with causal
tracing on or off.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.core.odrips import ODRIPSController
from repro.obs.causal import (
    CAUSE_IDLE,
    CAUSE_MAINTENANCE,
    attribution_cells,
    build_causal_report,
    flow_critical_paths,
    wake_cause,
)
from repro.obs.export import chrome_trace, jsonl_lines
from repro.obs.tracer import (
    EDGE_COMPILED,
    EDGE_DELIVERY,
    EDGE_FOLLOWUP,
    EDGE_TRIGGER,
    MACRO_TRACK,
    observe,
)
from repro.perf.fingerprint import canonical

EDGE_KINDS = {EDGE_DELIVERY, EDGE_TRIGGER, EDGE_FOLLOWUP, EDGE_COMPILED}


@pytest.fixture(scope="module")
def session():
    return obs.run_traced("fig2", cycles=2)


@pytest.fixture(scope="module")
def macro_session():
    """An observed macro-stepped run (most cycles compiled)."""
    with observe() as tracer:
        measurement = ODRIPSController().measure(cycles=12, macro=True)
    assert measurement.macro is not None
    assert measurement.macro["cycles_compiled"] > 0
    return tracer, tracer.platforms[-1], measurement


class TestCausalEdges:
    def test_seams_record_every_edge_kind_but_compiled(self, session):
        kinds = {edge.kind for edge in session.tracer.edges}
        assert {EDGE_DELIVERY, EDGE_TRIGGER, EDGE_FOLLOWUP} <= kinds
        assert kinds <= EDGE_KINDS

    def test_edges_reference_existing_records(self, session):
        spans = set(map(id, session.tracer.spans))
        instants = set(map(id, session.tracer.instants))
        for edge in session.tracer.edges:
            assert id(edge.source) in spans | instants
            assert id(edge.target) in spans | instants

    def test_macro_run_records_compiled_edges(self, macro_session):
        tracer, _platform, measurement = macro_session
        compiled = [e for e in tracer.edges if e.kind == EDGE_COMPILED]
        assert len(compiled) == measurement.macro["macro_steps"]
        for edge in compiled:
            assert edge.target.track == MACRO_TRACK


class TestWakeChains:
    def test_every_window_wake_has_a_chain(self, session):
        report = build_causal_report(session.tracer, session.platform)
        start_ps, end_ps = session.tracer.window_ps
        in_window = [
            e for e in session.platform.wake_log if start_ps <= e.time_ps < end_ps
        ]
        assert len(report.chains) == len(in_window)
        for chain in report.chains:
            assert chain.cause == wake_cause("timer")
            assert chain.exit_span is not None
            assert chain.exit_latency_ps > 0

    def test_macro_wakes_collapse_into_aggregated_chains(self, macro_session):
        tracer, platform, _measurement = macro_session
        report = build_causal_report(tracer, platform)
        compiled_chains = [c for c in report.chains if c.macro_span is not None]
        assert compiled_chains
        assert sum(c.cycles for c in report.chains) == len(
            [
                e
                for e in platform.wake_log
                if report.start_ps <= e.time_ps < report.end_ps
            ]
        )
        digest = compiled_chains[0].as_dict()
        assert digest["compiled"] is True and digest["cycles"] > 1


class TestCauseRollups:
    def test_rollups_account_for_every_joule(self, session):
        report = build_causal_report(session.tracer, session.platform)
        assert report.total_energy_j == pytest.approx(
            session.ledger.total_energy_j, rel=1e-9
        )

    def test_rollups_account_for_every_picosecond(self, session):
        report = build_causal_report(session.tracer, session.platform)
        assert sum(r.dwell_ps for r in report.rollups.values()) == report.window_ps

    def test_expected_causes_present(self, session):
        report = build_causal_report(session.tracer, session.platform)
        assert {CAUSE_IDLE, CAUSE_MAINTENANCE, wake_cause("timer")} <= set(
            report.rollups
        )
        assert report.ranked_rollups()[0].cause == CAUSE_IDLE  # DRIPS dominates

    def test_macro_rollups_match_exact_rollups(self, macro_session):
        """Per-cycle attribution on the summary span decomposes the skip."""
        tracer, platform, _measurement = macro_session
        with observe() as exact_tracer:
            ODRIPSController().measure(cycles=12, macro=False)
        exact = build_causal_report(exact_tracer, exact_tracer.platforms[-1])
        compiled = build_causal_report(tracer, platform)
        assert set(exact.rollups) == set(compiled.rollups)
        for cause, rollup in exact.rollups.items():
            assert compiled.rollups[cause].energy_j == pytest.approx(
                rollup.energy_j, rel=1e-6
            )
            assert compiled.rollups[cause].events == rollup.events


class TestCriticalPaths:
    def test_steps_tile_their_flow(self, session):
        for path in flow_critical_paths(session.tracer):
            assert path.steps, f"{path.flow} has no step decomposition"
            assert sum(total for _label, total, _count in path.steps) == path.total_ps

    def test_steps_ranked_by_total_latency(self, session):
        for path in flow_critical_paths(session.tracer):
            totals = [total for _label, total, _count in path.steps]
            assert totals == sorted(totals, reverse=True)


class TestAttributionCells:
    def test_cells_sum_to_ledger_total(self, session):
        cells = attribution_cells(session.tracer, session.platform)
        assert math.fsum(cells.values()) == pytest.approx(
            session.ledger.total_energy_j, rel=1e-9
        )

    def test_cell_domains_match_ledger_domains(self, session):
        cells = attribution_cells(session.tracer, session.platform)
        assert {domain for domain, _s, _c in cells} == set(
            session.ledger.domain_energy_j
        )


class TestPerfettoRoundTrip:
    def test_flow_arrows_round_trip(self, session):
        """Export -> parse JSON -> the causal edge set is intact."""
        payload = json.loads(
            json.dumps(chrome_trace(session.tracer, platform=session.platform))
        )
        arrows = [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]
        starts = {e["id"]: e for e in arrows if e["ph"] == "s"}
        finishes = {e["id"]: e for e in arrows if e["ph"] == "f"}
        assert len(starts) == len(finishes) == len(session.tracer.edges)
        for index, edge in enumerate(session.tracer.edges):
            start, finish = starts[index], finishes[index]
            assert start["name"] == finish["name"] == edge.kind
            assert start["cat"] == finish["cat"] == "causal"
            assert finish["bp"] == "e"
            assert start["ts"] <= finish["ts"]
        assert payload["otherData"]["edges"] == len(session.tracer.edges)

    def test_macro_summary_spans_exported_with_attribution(self, macro_session):
        tracer, platform, measurement = macro_session
        payload = json.loads(json.dumps(chrome_trace(tracer, platform=platform)))
        spans = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X"
            and e["name"].startswith("macro:compiled")
            and "cycles" in e.get("args", {})
        ]
        assert len(spans) == measurement.macro["macro_steps"]
        compiled = 0
        for span in spans:
            args = span["args"]
            compiled += args["cycles"]
            assert args["wake_type"] == "timer"
            assert args["period_ps"] > 0
            assert set(args["cycle_state_energy_j"]) == set(
                args["cycle_state_dwell_ps"]
            )
        assert compiled == measurement.macro["cycles_compiled"]

    def test_jsonl_carries_edge_records(self, session):
        edges = [
            json.loads(line)
            for line in jsonl_lines(session.tracer)
            if json.loads(line).get("type") == "edge"
        ]
        assert len(edges) == len(session.tracer.edges)
        for record, edge in zip(edges, session.tracer.edges):
            assert record["kind"] == edge.kind
            assert record["source"]["track"] == edge.source.track
            assert record["target"]["track"] == edge.target.track


class TestCausalPurity:
    def test_exact_measurement_bit_identical_with_causal_tracing(self):
        dark = ODRIPSController().measure(cycles=1)
        with observe():
            lit = ODRIPSController().measure(cycles=1)
        assert json.dumps(canonical(vars(dark)), sort_keys=True) == json.dumps(
            canonical(vars(lit)), sort_keys=True
        )

    def test_macro_measurement_bit_identical_with_causal_tracing(self):
        dark = ODRIPSController().measure(cycles=12, macro=True)
        with observe():
            lit = ODRIPSController().measure(cycles=12, macro=True)
        assert json.dumps(canonical(vars(dark)), sort_keys=True) == json.dumps(
            canonical(vars(lit)), sort_keys=True
        )

    def test_building_the_report_is_read_only(self, session):
        before = (
            len(session.tracer.spans),
            len(session.tracer.instants),
            len(session.tracer.edges),
            len(session.platform.trace),
        )
        build_causal_report(session.tracer, session.platform)
        attribution_cells(session.tracer, session.platform)
        after = (
            len(session.tracer.spans),
            len(session.tracer.instants),
            len(session.tracer.edges),
            len(session.platform.trace),
        )
        assert before == after
