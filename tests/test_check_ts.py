"""Transition-system compilation (repro.check.ts)."""

from __future__ import annotations

from repro.check.ts import compile_transition_system, iter_flow_steps
from repro.core.techniques import TechniqueSet
from repro.lint.model import walk_model
from repro.system.flows import ENTRY_FLOW_SPEC, EXIT_FLOW_SPEC, FlowStepSpec
from repro.system.skylake import SkylakePlatform


def odrips_view():
    return walk_model(SkylakePlatform(techniques=TechniqueSet.odrips()))


class TinyModel:
    """Minimal duck-typed platform: just the introspection hooks."""

    def __init__(self, transitions, initial="BOOT", active="ACTIVE",
                 flows=None, wake_receptive=(), safety=None):
        states = sorted({initial, active}
                        | set(transitions)
                        | {t for targets in transitions.values() for t in targets})
        self._spec = {
            "states": states,
            "initial": initial,
            "active": active,
            "transitions": transitions,
            "wake_receptive": {state: frozenset() for state in wake_receptive},
            "wake_event_types": (),
        }
        self._flows = flows or {}
        self._safety = safety

    def fsm_description(self):
        return self._spec

    def flow_descriptions(self):
        return self._flows

    def safety_description(self):
        if self._safety is None:
            return {}
        return self._safety


def test_shipped_platform_compiles_without_diagnostics():
    ts, diagnostics = compile_transition_system(odrips_view())
    assert diagnostics == []
    assert ts is not None
    assert ts.active == "ACTIVE"
    assert ts.flow_for_state == {"ENTRY": "entry", "EXIT": "exit"}
    assert ts.detached_flows == ()
    assert ts.idle_states == ("DRIPS",)
    assert dict(ts.clock_requirements) == {
        "proc.compute": "clk-24mhz",
        "pch.aon": "clk-32khz",
    }
    assert set(ts.wake_sources) == {"proc.pmu", "pch.aon"}


def test_every_declared_step_is_enumerated():
    ts, _ = compile_transition_system(odrips_view())
    labels = {label for _flow, label in iter_flow_steps(ts)}
    assert {spec.label for spec in ENTRY_FLOW_SPEC} <= labels
    assert {spec.label for spec in EXIT_FLOW_SPEC} <= labels


def test_entering_a_flow_state_executes_step_zero():
    ts, _ = compile_transition_system(odrips_view())
    # BOOT -> ACTIVE (no flow attached to ACTIVE)
    edges, blocked = ts.successors(ts.initial)
    assert blocked == []
    assert [label for label, _ in edges] == ["BOOT->ACTIVE"]
    active = edges[0][1]
    # ACTIVE -> ENTRY executes the entry flow's first step immediately
    edges, _ = ts.successors(active)
    assert [label for label, _ in edges] == ["entry:compute-quiesce"]
    state = edges[0][1]
    assert state.fsm == "ENTRY" and state.flow == "entry" and state.step == 0
    assert state.halted == frozenset({"proc.compute"})


def test_step_effects_accumulate_and_reverse():
    ts, _ = compile_transition_system(odrips_view())
    state = ts.initial
    visits = 0
    # Walk one full cycle deterministically (the system is a single path:
    # BOOT -> ACTIVE -> entry steps -> DRIPS -> exit steps -> ACTIVE).
    for _ in range(40):
        edges, _ = ts.successors(state)
        assert edges, f"unexpected dead end at {state.describe()}"
        _, state = edges[0]
        if state.fsm == "ACTIVE":
            visits += 1
            if visits == 2:
                break
    # the walk closed the cycle: back in ACTIVE with a balanced ledger
    assert visits == 2
    assert state.off == frozenset()
    assert state.halted == frozenset()
    assert state.gated == frozenset()


def test_unknown_clock_in_flow_is_c105():
    view = odrips_view()
    for flow in view.flows:
        if flow.name == "entry":
            steps = list(flow.steps)
            steps[4] = FlowStepSpec("entry:clock-shutdown", clocks_off=("clk-48mhz",))
            object.__setattr__(flow, "steps", tuple(steps))
    _, diagnostics = compile_transition_system(view)
    assert [d.rule for d in diagnostics] == ["C105"]
    assert "clk-48mhz" in diagnostics[0].message


def test_unknown_safety_references_are_c106():
    view = odrips_view()
    view.clock_requirements = (("proc.nope", "clk-24mhz"), ("proc.compute", "clk-nope"))
    view.wake_sources = ("board.nope",)
    _, diagnostics = compile_transition_system(view)
    assert [d.rule for d in diagnostics] == ["C106", "C106", "C106"]


def test_view_without_fsm_compiles_to_nothing():
    class Bare:
        pass

    ts, diagnostics = compile_transition_system(walk_model(Bare()))
    assert ts is None and diagnostics == []


def test_detached_flow_is_recorded():
    model = TinyModel(
        {"BOOT": ("ACTIVE",), "ACTIVE": ("BOOT",)},
        flows={"orphan": (FlowStepSpec("orphan:step"),)},
    )
    ts, diagnostics = compile_transition_system(walk_model(model))
    assert diagnostics == []
    assert ts.detached_flows == ("orphan",)


def test_blocked_requirement_produces_no_edge():
    model = TinyModel(
        {"BOOT": ("ENTRY",), "ENTRY": ("ACTIVE",)},
        flows={
            "entry": (
                FlowStepSpec("entry:kill", gates_off=("dom.a",)),
                FlowStepSpec("entry:use", requires=("dom.a",)),
            )
        },
    )
    ts, _ = compile_transition_system(walk_model(model))
    edges, _ = ts.successors(ts.initial)
    (_, step0), = edges
    edges, blocked = ts.successors(step0)
    assert edges == []
    assert len(blocked) == 1
    assert blocked[0].missing == ("dom.a",)
    assert "entry:use" in blocked[0].describe()
