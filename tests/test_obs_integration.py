"""Integration tests: instrumented seams, span discipline, cache purity.

Covers the two invariants the observability layer promises:

* every instrumented flow step opens *and closes* its span — a full
  ``request_drips`` -> wake round-trip leaves zero open spans;
* tracing is pure observation — cached measurements are byte-identical
  with and without a tracer installed.
"""

import json

import pytest

from repro.core.experiments import fig2_connected_standby
from repro.core.techniques import TechniqueSet
from repro.obs.metrics import BoundedHistogram
from repro.obs.tracer import (
    FLOW_STEP_TRACK,
    FLOW_TRACK,
    active,
    observe,
)
from repro.perf import SimulationCache
from repro.perf.fingerprint import canonical
from repro.system.flows import FLOW_SPAN_TABLE, FlowController
from repro.system.states import PlatformState

from _platform import build_platform


def run_observed_cycle(techniques, idle_s=0.05):
    """One boot -> DRIPS -> timer-wake round trip under a tracer."""
    with observe() as tracer:
        platform = build_platform(techniques, small_context=True)
        flows = FlowController(platform)
        platform.boot()
        platform.pmu.schedule_timer_event(platform.next_timer_target(idle_s))
        flows.request_drips()
        platform.kernel.run(max_events=100_000)
    assert platform.state is PlatformState.ACTIVE
    return platform, flows, tracer


class TestSpanDiscipline:
    @pytest.mark.parametrize(
        "techniques",
        [TechniqueSet.baseline(), TechniqueSet.odrips()],
        ids=["baseline", "odrips"],
    )
    def test_round_trip_leaves_no_open_spans(self, techniques):
        _platform, _flows, tracer = run_observed_cycle(techniques)
        assert tracer.open_spans() == []

    def test_step_spans_follow_declared_order(self):
        """Executed steps appear in FLOW_SPAN_TABLE order, no repeats."""
        _platform, _flows, tracer = run_observed_cycle(TechniqueSet.odrips())
        names = [span.name for span in tracer.closed_spans(FLOW_STEP_TRACK)]
        executed_entry = [n for n in names if n.startswith("entry:")]
        executed_exit = [n for n in names if n.startswith("exit:")]
        declared_entry = [
            label for label in FLOW_SPAN_TABLE["entry"] if label in executed_entry
        ]
        declared_exit = [
            label for label in FLOW_SPAN_TABLE["exit"] if label in executed_exit
        ]
        assert executed_entry == declared_entry
        assert executed_exit == declared_exit

    def test_step_spans_tile_the_flow_span(self):
        """Step spans are contiguous and stay inside their flow span."""
        _platform, _flows, tracer = run_observed_cycle(TechniqueSet.baseline())
        for flow in tracer.closed_spans(FLOW_TRACK):
            inside = [
                span
                for span in tracer.closed_spans(FLOW_STEP_TRACK)
                if flow.start_ps <= span.start_ps and span.end_ps <= flow.end_ps
            ]
            assert inside, f"flow span {flow.name} contains no step spans"
            for earlier, later in zip(inside, inside[1:]):
                assert earlier.end_ps == later.start_ps

    def test_flow_latency_histograms_recorded(self):
        _platform, flows, tracer = run_observed_cycle(TechniqueSet.baseline())
        entry = tracer.metrics.histogram("flow.entry_latency_us")
        exit_ = tracer.metrics.histogram("flow.exit_latency_us")
        assert entry.count == len(flows.stats.entry_latencies_ps)
        assert exit_.count == len(flows.stats.exit_latencies_ps)
        # the hot-path latency histograms are bounded (S408): the sum stays
        # exact, so a single observation round-trips through the mean
        assert isinstance(entry, BoundedHistogram)
        assert isinstance(exit_, BoundedHistogram)
        assert entry.mean == pytest.approx(flows.stats.last_entry_us())
        assert exit_.mean == pytest.approx(flows.stats.last_exit_us())


class TestInstrumentedSeams:
    def test_kernel_pmu_wake_counters_move(self):
        # odrips routes the timer wake through the chipset hub (Sec. 5),
        # so all three instrumented seams fire in one cycle
        platform, _flows, tracer = run_observed_cycle(TechniqueSet.odrips())
        counters = tracer.metrics.counters()
        kernel_total = sum(
            value for name, value in counters.items()
            if name.startswith("kernel.events:")
        )
        assert kernel_total == platform.kernel.events_fired
        assert any(name.startswith("pmu.transitions:") for name in counters)
        assert counters.get("wake.delivered:timer", 0) >= 1

    def test_platform_built_without_tracer_stays_dark(self):
        assert active() is None
        platform = build_platform(TechniqueSet.baseline(), small_context=True)
        assert platform.obs is None
        assert platform.kernel.obs is None
        assert platform.pmu.obs is None
        assert platform.chipset.wake_hub.obs is None

    def test_uninstall_does_not_detach_built_platform(self):
        """Platforms keep the tracer they were constructed under."""
        with observe() as tracer:
            platform = build_platform(TechniqueSet.baseline(), small_context=True)
        assert active() is None
        assert platform.obs is tracer

    def test_cache_hit_miss_counters(self):
        cache = SimulationCache()
        with observe() as tracer:
            fig2_connected_standby(cycles=1, cache=cache)
            fig2_connected_standby(cycles=1, cache=cache)
        counters = tracer.metrics.counters()
        assert counters["cache.miss"] == 1
        assert counters["cache.hit"] == 1
        assert cache.stats.hits == 1 and cache.stats.misses == 1


class TestObservationPurity:
    def test_measurement_identical_with_and_without_tracer(self):
        """Acceptance: results are byte-identical with the tracer on."""
        dark = fig2_connected_standby(cycles=1)
        with observe():
            lit = fig2_connected_standby(cycles=1)
        dark_bytes = json.dumps(canonical(vars(dark)), sort_keys=True)
        lit_bytes = json.dumps(canonical(vars(lit)), sort_keys=True)
        assert dark_bytes == lit_bytes

    def test_cache_key_ignores_tracer(self):
        """A dark run's cache entry must hit for a traced re-run."""
        cache = SimulationCache()
        dark = fig2_connected_standby(cycles=1, cache=cache)
        assert cache.stats.misses == 1
        with observe():
            lit = fig2_connected_standby(cycles=1, cache=cache)
        assert cache.stats.hits == 1
        assert json.dumps(canonical(vars(dark)), sort_keys=True) == json.dumps(
            canonical(vars(lit)), sort_keys=True
        )
