"""Tests for the connected-standby workload runner."""

import pytest

from repro.config import StandbyWorkloadConfig
from repro.core.techniques import TechniqueSet
from repro.errors import WorkloadError
from repro.workloads.standby import ConnectedStandbyRunner

from _platform import build_platform


def make_runner(techniques=None, **kwargs):
    platform = build_platform(
        techniques if techniques is not None else TechniqueSet.baseline(),
        small_context=True,
    )
    return ConnectedStandbyRunner(platform, **kwargs)


class TestBasicRuns:
    def test_short_run_produces_result(self):
        runner = make_runner(idle_interval_s=0.5, maintenance_s=0.02)
        result = runner.run(cycles=2)
        assert result.cycles == 2
        assert result.average_power_w > 0
        assert result.window_s == pytest.approx(2 * (0.5 + 0.02), rel=0.1)

    def test_residencies_sum_to_one(self):
        runner = make_runner(idle_interval_s=0.5, maintenance_s=0.02)
        result = runner.run(cycles=2)
        total = sum(
            result.residency.residency(state) for state in result.residency.dwell_ps
        )
        assert total == pytest.approx(1.0)

    def test_paper_residency_with_default_workload(self):
        """Sec. 7: 99.5% DRIPS residency with 30 s idle / ~145 ms bursts."""
        runner = make_runner()
        result = runner.run(cycles=1)
        assert result.drips_residency == pytest.approx(0.995, abs=0.002)

    def test_average_between_drips_and_active(self):
        runner = make_runner(idle_interval_s=1.0, maintenance_s=0.05)
        result = runner.run(cycles=1)
        assert result.drips_power_w < result.average_power_w < result.active_power_w

    def test_breakdown_captured(self):
        runner = make_runner(idle_interval_s=2.5, maintenance_s=0.02)
        result = runner.run(cycles=1)
        assert result.drips_breakdown_w
        assert any("sr_sram" in name for name in result.drips_breakdown_w)

    def test_invalid_cycles_rejected(self):
        runner = make_runner(idle_interval_s=0.5)
        with pytest.raises(WorkloadError):
            runner.run(cycles=0)

    def test_invalid_idle_rejected(self):
        with pytest.raises(WorkloadError):
            make_runner(idle_interval_s=0.0)


class TestScheduling:
    def test_periodic_mode_fixes_wake_grid(self):
        period = 0.1
        runner = make_runner(idle_interval_s=0.05, maintenance_s=0.02, period_s=period)
        result = runner.run(cycles=3)
        wakes = [event.time_ps for event in runner.platform.wake_log]
        gaps = [b - a for a, b in zip(wakes, wakes[1:])]
        for gap in gaps:
            assert gap == pytest.approx(period * 1e12, rel=1e-6)

    def test_maintenance_randomization_is_seeded(self):
        workload = StandbyWorkloadConfig(seed=7)
        runner_a = make_runner(workload=workload, idle_interval_s=0.3,
                               randomize_maintenance=True)
        runner_b = make_runner(workload=workload, idle_interval_s=0.3,
                               randomize_maintenance=True)
        result_a = runner_a.run(cycles=2)
        result_b = runner_b.run(cycles=2)
        assert result_a.average_power_w == pytest.approx(result_b.average_power_w)

    def test_higher_core_frequency_shortens_active(self):
        slow = make_runner(idle_interval_s=0.5, maintenance_s=0.1)
        fast = make_runner(idle_interval_s=0.5, maintenance_s=0.1)
        fast.platform.set_core_frequency(1.6)
        slow_result = slow.run(cycles=1)
        fast_result = fast.run(cycles=1)
        assert (
            fast_result.residency.dwell_ps["active"]
            < slow_result.residency.dwell_ps["active"]
        )


class TestExternalWakes:
    def test_injected_wakes_recorded(self):
        workload = StandbyWorkloadConfig(seed=3, external_wake_rate_per_hour=100000.0)
        runner = make_runner(workload=workload, idle_interval_s=2.0,
                             maintenance_s=0.02, external_wakes=True)
        result = runner.run(cycles=2)
        assert any("network" in event for event in result.wake_events)
