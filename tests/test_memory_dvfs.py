"""Tests for the dynamic memory DVFS extension (Sec. 8.2 recommendation)."""

import pytest

from repro.core.techniques import TechniqueSet
from repro.errors import ConfigError
from repro.memory.dvfs import (
    MemoryDVFSGovernor,
    memory_dvfs_comparison,
)

from _platform import build_platform


class TestGovernor:
    def make(self, techniques=None):
        platform = build_platform(
            techniques if techniques is not None else TechniqueSet.baseline(),
            small_context=True,
        )
        platform.boot()
        return platform, MemoryDVFSGovernor(platform)

    def test_standby_mode_lowers_rate(self):
        platform, governor = self.make()
        governor.enter_standby_mode()
        assert platform.board.memory.transfer_rate_hz == pytest.approx(0.8e9)
        assert governor.mode == "standby"
        assert governor.retrain_count == 1

    def test_interactive_mode_restores_rate(self):
        platform, governor = self.make()
        governor.enter_standby_mode()
        governor.enter_interactive_mode()
        assert platform.board.memory.transfer_rate_hz == pytest.approx(1.6e9)
        assert governor.retrain_count == 2

    def test_same_mode_is_noop(self):
        _platform, governor = self.make()
        governor.enter_interactive_mode()
        assert governor.retrain_count == 0

    def test_retrain_while_self_refreshing_rejected(self):
        platform, governor = self.make()
        platform.memory_controller.enter_self_refresh()
        with pytest.raises(ConfigError):
            governor.enter_standby_mode()

    def test_pcm_main_memory_noop(self):
        platform, governor = (None, None)
        platform = build_platform(TechniqueSet.odrips_pcm(), small_context=True)
        platform.boot()
        governor = MemoryDVFSGovernor(platform)
        governor.enter_standby_mode()
        assert governor.mode == "standby"
        assert governor.retrain_count == 0  # nothing to retrain

    def test_invalid_rates_rejected(self):
        platform = build_platform(TechniqueSet.baseline(), small_context=True)
        with pytest.raises(ConfigError):
            MemoryDVFSGovernor(platform, standby_rate_hz=2e9, interactive_rate_hz=1e9)

    def test_standby_power_drops_at_low_rate(self):
        platform, governor = self.make()
        platform.apply_active_state()
        before = platform.platform_power()
        governor.enter_standby_mode()
        assert platform.platform_power() < before


class TestPolicyComparison:
    def test_dynamic_wins_the_day(self):
        """The Sec. 8.2 recommendation: dynamic DVFS beats both statics."""
        results = memory_dvfs_comparison(cycles=1)
        by_policy = {row.policy: row for row in results}
        dynamic = by_policy["dynamic DVFS (recommended)"]
        static_high = by_policy["static full rate"]
        static_low = by_policy["static low rate"]
        assert dynamic.day_energy_wh < static_high.day_energy_wh
        assert dynamic.day_energy_wh < static_low.day_energy_wh

    def test_static_low_slows_interactive(self):
        results = memory_dvfs_comparison(cycles=1)
        by_policy = {row.policy: row for row in results}
        assert by_policy["static low rate"].interactive_slowdown > 1.2
        assert by_policy["dynamic DVFS (recommended)"].interactive_slowdown == pytest.approx(1.0)

    def test_standby_power_matches_fig6c_direction(self):
        results = memory_dvfs_comparison(cycles=1)
        by_policy = {row.policy: row for row in results}
        assert (
            by_policy["static low rate"].standby_power_mw
            < by_policy["static full rate"].standby_power_mw
        )
