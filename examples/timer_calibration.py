"""Scenario: keeping time at 32.768 kHz without drifting (Sec. 4).

A wall-clock deep dive into the paper's hardest correctness argument:
after migrating the timer to the chipset and switching it to a clock
~730x slower, the count must stay within 1 ppb of what the 24 MHz timer
would have shown — across crystals with real manufacturing error, over
arbitrary sleep durations, through both handoff edges.

This example runs the actual calibration (Eq. 2-4), performs the
fast->slow->fast handoff of Fig. 3(b) across several ppm corners and
sleep durations, and prints the observed drift.

Run:  python examples/timer_calibration.py
"""

from repro.analysis.report import format_table
from repro.clocks.clock import DerivedClock
from repro.clocks.crystal import CrystalOscillator
from repro.timers.calibration import StepCalibrator
from repro.timers.dual_timer import ChipsetDualTimer
from repro.units import SECOND


def run_corner(fast_ppm: float, slow_ppm: float, sleep_s: int):
    """Calibrate, hand off, sleep, hand back; return drift stats."""
    fast = CrystalOscillator("xtal24", 24e6, ppm_error=fast_ppm)
    slow = CrystalOscillator("rtc", 32768.0, ppm_error=slow_ppm)
    calibrator = StepCalibrator.for_precision(fast, slow, ppb=1.0)
    calibration = calibrator.run(0)

    timer = ChipsetDualTimer(
        "dual", DerivedClock("f", fast), DerivedClock("s", slow),
        frac_bits=calibrator.frac_bits,
    )
    timer.set_step(calibration.step)
    timer.load_fast(0, 0)

    edge = timer.next_slow_edge(0)
    value_at_edge = timer.read(edge)
    timer.switch_to_slow(edge)               # 24 MHz crystal may turn off now
    back_edge = slow.next_edge(edge + sleep_s * SECOND)
    timer.switch_to_fast(back_edge)          # crystal back on, timer restored

    got = timer.read(back_edge)
    truth = value_at_edge + fast.edges_in(edge + 1, back_edge + 1)
    elapsed = truth - value_at_edge
    drift_cycles = got - truth
    drift_ppb = drift_cycles / elapsed * 1e9 if elapsed else 0.0
    return calibration, drift_cycles, drift_ppb


def main() -> None:
    print("Step register sizing (Sec. 4.1.3):")
    fast = CrystalOscillator("x", 24e6)
    slow = CrystalOscillator("s", 32768.0)
    calibrator = StepCalibrator.for_precision(fast, slow)
    print(f"  integer bits m = {calibrator.int_bits}   (paper: 10)")
    print(f"  fraction bits f = {calibrator.frac_bits}  (paper: 21)")
    print(f"  calibration window = 2^{calibrator.frac_bits} slow cycles "
          f"= {calibrator.duration_ps() / 1e12:.0f} s (once per reset)")
    print()

    rows = []
    for fast_ppm, slow_ppm, sleep_s in [
        (0.0, 0.0, 30),
        (+13.0, -7.0, 30),
        (+50.0, -30.0, 300),
        (-20.0, +15.0, 3600),
        (+100.0, -100.0, 86400),
    ]:
        _calibration, drift_cycles, drift_ppb = run_corner(fast_ppm, slow_ppm, sleep_s)
        rows.append(
            [
                f"{fast_ppm:+.0f} / {slow_ppm:+.0f}",
                f"{sleep_s} s",
                drift_cycles,
                f"{abs(drift_ppb):.3f} ppb",
            ]
        )
    print(format_table(
        ["XTAL error (24M/32k)", "sleep", "drift (fast cycles)", "relative drift"],
        rows,
        title="Fast->slow->fast handoff drift (paper bound: ~1 ppb)",
    ))
    print()
    print("Even a full day on the 32 kHz clock keeps the timer within a few")
    print("24 MHz cycles of truth - the 1 ppb spec of Sec. 4.1.3 holds.")


if __name__ == "__main__":
    main()
