"""Scenario: race-to-sleep — what's the best core frequency for standby?

Sec. 8.1 asks whether running the maintenance bursts faster (to get back
into ODRIPS sooner) saves energy.  The paper sweeps three points
(0.8/1.0/1.5 GHz) and concludes the optimum is "at some point between
0.8 GHz and 1.5 GHz".  This example sweeps the full frequency range of
the part (Table 1: 0.8-2.4 GHz) to locate that optimum precisely in the
model, and explains the mechanism.

Run:  python examples/race_to_sleep.py
"""

from repro.analysis.report import format_table
from repro.core.odrips import ODRIPSController
from repro.core.techniques import TechniqueSet


def main() -> None:
    frequencies = [0.8, 0.9, 1.0, 1.1, 1.2, 1.5, 2.0, 2.4]
    print(f"Sweeping {len(frequencies)} core frequencies on the ODRIPS platform...")

    rows = []
    best = None
    reference = None
    for freq in frequencies:
        measurement = ODRIPSController(TechniqueSet.odrips()).measure(
            cycles=2, core_freq_ghz=freq
        )
        watts = measurement.average_power_w
        if reference is None:
            reference = watts
        if best is None or watts < best[1]:
            best = (freq, watts)
        rows.append(
            [
                f"{freq:.1f} GHz",
                f"{watts * 1e3:.2f} mW",
                f"{watts / reference - 1:+.2%}",
            ]
        )
    print()
    print(format_table(
        ["core frequency", "avg standby power", "delta vs 0.8 GHz"],
        rows,
        title="Race-to-sleep frequency sweep (Sec. 8.1, extended)",
    ))
    print()
    assert best is not None
    print(f"Optimum: {best[0]:.1f} GHz at {best[1] * 1e3:.2f} mW.")
    print()
    print("Mechanism: up to ~1.0 GHz the voltage rides the Vmin floor, so")
    print("energy-per-cycle is flat while the burst (and its fixed uncore")
    print("power) shrinks - racing wins.  Above Vmin the required voltage")
    print("rises and CV^2f grows faster than the burst shrinks - racing")
    print("loses.  The paper's three-point sweep brackets the same optimum.")


if __name__ == "__main__":
    main()
