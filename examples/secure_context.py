"""Scenario: the security story of CTX-SGX-DRAM (Sec. 6), demonstrated.

Storing the processor context (configuration registers, firmware patches,
fuse values) in DRAM exposes it to cold-boot, bus-snooping and replay
attacks.  This example shows what the MEE model actually guarantees:

1. **Confidentiality** - the context bytes in DRAM are ciphertext.
2. **Integrity** - flipping a single DRAM bit is detected on restore.
3. **Freshness** - replaying an older (validly encrypted!) snapshot of
   the protected region is detected by the on-chip root counter.

This is a defensive demonstration: every attack is detected, none
succeeds.

Run:  python examples/secure_context.py
"""

from repro.errors import SecurityError
from repro.memory.dram import DRAMDevice
from repro.sgx import MEECache, MemoryEncryptionEngine, TreeGeometry
from repro.units import GIB

REGION_BASE = 1 * GIB
CONTEXT = b"CSR:MSR_PKG_CST_CONFIG=0x7e|PATCH_REV=0x2100|FUSES=..." * 64


def build_engine(dram: DRAMDevice) -> MemoryEncryptionEngine:
    geometry = TreeGeometry.for_data_size(REGION_BASE, len(CONTEXT))
    mee = MemoryEncryptionEngine(
        dram, geometry, master_key=b"skylake-fuse-derived-master-key!",
        cache=MEECache(),
    )
    mee.initialize_region()
    return mee


def main() -> None:
    dram = DRAMDevice("ddr3l", capacity_bytes=2 * GIB)
    mee = build_engine(dram)

    print(f"Saving {len(CONTEXT)} bytes of processor context through the MEE...")
    save_latency = mee.bulk_write(0, CONTEXT)
    print(f"  saved in {save_latency / 1e6:.1f} us (paper: ~18 us for 200 KB)\n")

    # 1. confidentiality
    at_rest = dram._store.read(REGION_BASE, 64)
    print("1. Confidentiality: first 32 bytes at rest in DRAM:")
    print(f"   plaintext : {CONTEXT[:32]!r}")
    print(f"   in DRAM   : {at_rest[:32].hex()}  (ciphertext)")
    assert at_rest != CONTEXT[:64]
    print("   -> the context never touches DRAM in the clear\n")

    # 2. integrity: flip one bit (a RowHammer-style corruption)
    print("2. Integrity: flipping one DRAM bit inside the context...")
    corrupted = bytes([at_rest[0] ^ 0x01]) + at_rest[1:]
    dram._store.write(REGION_BASE, corrupted)
    try:
        mee.read(0, 64)
        raise AssertionError("tampering was NOT detected")
    except SecurityError as error:
        print(f"   -> detected: {error}\n")
    dram._store.write(REGION_BASE, at_rest)  # undo

    # 3. freshness: replay an old snapshot of block 0 + its metadata path
    print("3. Freshness: snapshotting the region, then replaying it after")
    print("   a newer context version was saved...")
    geometry = mee.geometry
    snapshot_ranges = [(geometry.block_address(0), 64),
                       (geometry.version_address(0), 8),
                       (geometry.leaf_mac_address(0), 8)]
    for level in range(1, geometry.levels + 1):
        snapshot_ranges.append((geometry.node_address(level, 0), 16))
    snapshot = {addr: dram._store.read(addr, size) for addr, size in snapshot_ranges}

    mee.write(0, b"NEWER-CONTEXT-VERSION" + bytes(43))  # version bump
    for addr, data in snapshot.items():                 # replay old state
        dram._store.write(addr, data)
    mee.cache.flush()  # pretend the engine lost its cached counters too
    try:
        mee.read(0, 64)
        raise AssertionError("replay was NOT detected")
    except SecurityError as error:
        print(f"   -> detected: {error}\n")

    print("All three attacks detected; the context is protected exactly as")
    print("Sec. 6 requires (confidentiality, integrity, freshness).")


if __name__ == "__main__":
    main()
