"""Scenario: why the PMU doesn't always pick DRIPS (LTR/TNTE governance).

Sec. 2.2: before entering an idle state the PMU weighs *latency
tolerance reporting* (LTR — how slow a wake the devices can tolerate)
against the *time to next timer event* (TNTE).  DRIPS only pays off when
both allow it; otherwise a shallower C-state wins.

This example replays a synthetic trace of device activity — an audio
burst (tight LTR), a download (frequent timers), and true idle — through
the PMU's selection logic and shows the resulting C-state mix and the
energy consequence of ignoring the hints.

Run:  python examples/idle_governor.py
"""

from collections import Counter

from repro.analysis.report import format_table
from repro.clocks.clock import DerivedClock
from repro.clocks.crystal import CrystalOscillator
from repro.power.domain import PowerDomain
from repro.processor.cstates import CSTATE_POWER_WATTS, CState
from repro.processor.pmu import ProcessorPMU
from repro.sim.kernel import Kernel
from repro.units import ms_to_ps, us_to_ps

#: (phase, LTR, TNTE, idle duration s) — a plausible evening of standby.
TRACE = [
    ("audio playback buffering", us_to_ps(80), ms_to_ps(2), 0.002),
    ("audio playback buffering", us_to_ps(80), ms_to_ps(2), 0.002),
    ("download, frequent timers", ms_to_ps(5), us_to_ps(400), 0.0004),
    ("download, frequent timers", ms_to_ps(5), us_to_ps(400), 0.0004),
    ("notification coalescing", ms_to_ps(5), ms_to_ps(80), 0.08),
    ("notification coalescing", ms_to_ps(5), ms_to_ps(80), 0.08),
    ("true idle", ms_to_ps(10), ms_to_ps(30_000), 30.0),
    ("true idle", ms_to_ps(10), ms_to_ps(30_000), 30.0),
    ("true idle", ms_to_ps(10), ms_to_ps(30_000), 30.0),
]

DRIPS_POWER_W = 0.060


def state_power(state: CState) -> float:
    if state is CState.C10:
        return DRIPS_POWER_W
    if state is CState.C0:
        return 3.0
    return CSTATE_POWER_WATTS[state]


def main() -> None:
    kernel = Kernel()
    fast = CrystalOscillator("x24", 24e6)
    pmu = ProcessorPMU(
        kernel, DerivedClock("fc", fast),
        component=PowerDomain("pmu").new_component("pmu"),
        drips_power_watts=0.42e-3, deep_power_watts=0.12e-3,
    )

    selections = Counter()
    governed_energy = 0.0
    always_drips_energy = 0.0
    rows = []
    for phase, ltr_ps, tnte_ps, idle_s in TRACE:
        state = pmu.select_idle_state(ltr_ps, tnte_ps)
        selections[state] += 1
        governed_energy += state_power(state) * idle_s
        # a naive governor that always dives to DRIPS pays the 500 us
        # round-trip transition energy (~0.5 mJ) on every short idle
        always_drips_energy += DRIPS_POWER_W * idle_s + 0.0005 * 1.05
        rows.append(
            [
                phase,
                f"{ltr_ps / 1e6:.0f} us",
                f"{tnte_ps / 1e9:.1f} ms",
                state.name,
            ]
        )
    print(format_table(["phase", "LTR", "TNTE", "selected state"], rows,
                       title="PMU idle-state selection (Sec. 2.2)"))
    print()
    mix = ", ".join(f"{state.name}: {count}" for state, count in sorted(selections.items()))
    print(f"State mix over the trace: {mix}")
    print()
    print(f"Energy, LTR/TNTE-governed:     {governed_energy * 1e3:8.2f} mJ")
    print(f"Energy, always-DRIPS (naive):  {always_drips_energy * 1e3:8.2f} mJ")
    print()
    print("For the long idles both policies agree (DRIPS), but on the short")
    print("ones the naive policy burns its own transition energy - exactly")
    print("the break-even argument of Fig. 6(a), applied per idle period.")


if __name__ == "__main__":
    main()
