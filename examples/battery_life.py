"""Scenario: how many days of connected standby does a tablet battery buy?

The paper's motivation (Sec. 1) is battery life of mobile devices that
are "idle the majority of the time" but stay connected.  This example
converts the measured connected-standby average power of every
configuration into standby battery life for a typical 38 Wh tablet
battery (Microsoft Surface class, one of the paper's target devices).

Run:  python examples/battery_life.py
"""

from repro import ODRIPSController, TechniqueSet
from repro.analysis.report import format_table

BATTERY_WH = 38.0  # Surface-class tablet battery

CONFIGURATIONS = [
    ("Baseline (DRIPS)", TechniqueSet.baseline()),
    ("WAKE-UP-OFF", TechniqueSet.wake_up_off_only()),
    ("AON-IO-GATE", TechniqueSet.with_io_gating()),
    ("CTX-SGX-DRAM", TechniqueSet.ctx_sgx_dram_only()),
    ("ODRIPS", TechniqueSet.odrips()),
    ("ODRIPS-MRAM", TechniqueSet.odrips_mram()),
    ("ODRIPS-PCM", TechniqueSet.odrips_pcm()),
]


def standby_days(average_watts: float) -> float:
    """Days of standby on the battery at the given average power."""
    return BATTERY_WH / average_watts / 24.0


def main() -> None:
    rows = []
    baseline_watts = None
    for label, techniques in CONFIGURATIONS:
        print(f"Simulating {label}...")
        measurement = ODRIPSController(techniques).measure(cycles=2)
        watts = measurement.average_power_w
        if baseline_watts is None:
            baseline_watts = watts
        rows.append(
            [
                label,
                f"{watts * 1e3:.1f} mW",
                f"{standby_days(watts):.0f} days",
                f"{(1 - watts / baseline_watts):.1%}",
            ]
        )
    print()
    print(format_table(
        ["configuration", "avg power", f"standby on {BATTERY_WH:.0f} Wh", "saving"],
        rows,
        title="Connected-standby battery life",
    ))
    print()
    print("Every percent of average-power saving is roughly a fifth of a")
    print("day of extra standby at this battery size - which is why the")
    print("paper attacks milliwatt-scale DRIPS inefficiencies.")


if __name__ == "__main__":
    main()
