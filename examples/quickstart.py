"""Quickstart: measure baseline DRIPS vs ODRIPS on the simulated platform.

Runs the connected-standby workload of the paper (Sec. 7: ~30 s idle
intervals, ~145 ms kernel-maintenance bursts) on the baseline Skylake
platform and on the same platform with all three ODRIPS techniques, and
prints the headline numbers of Fig. 6(a).

Run:  python examples/quickstart.py
"""

from repro import ODRIPSController, TechniqueSet
from repro.analysis.report import format_table


def main() -> None:
    print("Simulating baseline DRIPS (this runs a full platform model)...")
    baseline = ODRIPSController(TechniqueSet.baseline()).measure(cycles=2)

    print("Simulating ODRIPS (all three techniques)...")
    odrips = ODRIPSController(TechniqueSet.odrips()).measure(cycles=2)

    rows = [
        ["average power", f"{baseline.average_power_w * 1e3:.1f} mW",
         f"{odrips.average_power_w * 1e3:.1f} mW"],
        ["DRIPS power", f"{baseline.drips_power_w * 1e3:.1f} mW",
         f"{odrips.drips_power_w * 1e3:.1f} mW"],
        ["DRIPS residency", f"{baseline.drips_residency:.2%}",
         f"{odrips.drips_residency:.2%}"],
        ["entry latency", f"{baseline.entry_latency_us:.0f} us",
         f"{odrips.entry_latency_us:.0f} us"],
        ["exit latency", f"{baseline.exit_latency_us:.0f} us",
         f"{odrips.exit_latency_us:.0f} us"],
    ]
    print()
    print(format_table(["quantity", "baseline DRIPS", "ODRIPS"], rows,
                       title="Connected-standby: baseline vs ODRIPS"))
    print()
    saving = odrips.saving_vs(baseline)
    print(f"ODRIPS saves {saving:.1%} of platform average power "
          f"(paper: 22%).")


if __name__ == "__main__":
    main()
