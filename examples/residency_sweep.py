"""Scenario: when is ODRIPS worth entering? (the Fig. 6(a) blue line)

ODRIPS buys ~16 mW of DRIPS power but pays extra transition energy on
every entry/exit.  For very short idle periods the overhead loses; the
crossing point is the *energy break-even residency*.  The paper measures
6.5 ms for ODRIPS against a ~30 s typical residency — three and a half
orders of magnitude of headroom.

This example sweeps the idle residency on a fixed wake grid (the paper's
sweep methodology, Sec. 7), prints who wins at each point, and then
computes the precise break-even for each technique.

Run:  python examples/residency_sweep.py   (takes a minute or two)
"""

from repro.analysis.breakeven import find_break_even, residency_sweep
from repro.analysis.report import format_table
from repro.core.techniques import TechniqueSet


def main() -> None:
    print("Sweeping DRIPS residency for ODRIPS vs baseline...")
    residencies = [0.002, 0.005, 0.010, 0.030, 0.100]
    points = residency_sweep(TechniqueSet.odrips(), residencies, cycles=3)

    rows = []
    for idle_s, base_w, odrips_w in points:
        winner = "ODRIPS" if odrips_w < base_w else "baseline"
        rows.append(
            [
                f"{idle_s * 1e3:.0f} ms",
                f"{base_w * 1e3:.2f} mW",
                f"{odrips_w * 1e3:.2f} mW",
                winner,
            ]
        )
    print()
    print(format_table(
        ["idle residency", "baseline avg", "ODRIPS avg", "winner"],
        rows,
        title="Fixed-period residency sweep",
    ))

    print()
    print("Precise break-even points (two-point energy fit):")
    rows = []
    for label, techniques, paper in [
        ("WAKE-UP-OFF", TechniqueSet.wake_up_off_only(), "6.6 ms"),
        ("AON-IO-GATE", TechniqueSet.with_io_gating(), "6.3 ms"),
        ("CTX-SGX-DRAM", TechniqueSet.ctx_sgx_dram_only(), "7.4 ms"),
        ("ODRIPS", TechniqueSet.odrips(), "6.5 ms"),
        ("ODRIPS-MRAM", TechniqueSet.odrips_mram(), "(lowest)"),
        ("ODRIPS-PCM", TechniqueSet.odrips_pcm(), "-"),
    ]:
        result = find_break_even(techniques)
        rows.append([label, f"{result.break_even_ms:.2f} ms", paper])
    print()
    print(format_table(["technique", "measured break-even", "paper"], rows))
    print()
    print("Typical connected-standby residency is ~30 s (Sec. 7) - four")
    print("thousand times the ODRIPS break-even, which is why the paper")
    print("concludes the techniques are 'superior ... over the baseline'.")


if __name__ == "__main__":
    main()
