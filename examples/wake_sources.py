"""Scenario: a day of connected standby with real wake sources.

The paper's platform wakes from an internal timer (kernel maintenance),
from the network (notifications), and from thermal events reported by the
embedded controller over the offloaded GPIO (Sec. 5.2).  This example
runs a longer ODRIPS simulation with randomized maintenance bursts and
injected network wakes, then breaks the day down by wake source and by
platform state.

Run:  python examples/wake_sources.py
"""

from collections import Counter

from repro.analysis.report import format_table
from repro.config import StandbyWorkloadConfig
from repro.core.odrips import ODRIPSController
from repro.core.techniques import TechniqueSet
from repro.workloads.standby import ConnectedStandbyRunner


def main() -> None:
    workload = StandbyWorkloadConfig(
        idle_interval_s=30.0,
        external_wake_rate_per_hour=240.0,  # a chatty messaging app
        seed=42,
    )
    controller = ODRIPSController(TechniqueSet.odrips(), workload=workload)
    platform = controller.build_platform()
    runner = ConnectedStandbyRunner(
        platform,
        workload=workload,
        randomize_maintenance=True,
        external_wakes=True,
    )
    print("Simulating 20 connected-standby cycles with external wakes...")
    result = runner.run(cycles=20)

    sources = Counter(event.split("@")[0] for event in result.wake_events)
    rows = [[source, count] for source, count in sources.most_common()]
    print()
    print(format_table(["wake source", "events"], rows, title="Wake sources"))

    print()
    rows = []
    for state in sorted(result.residency.dwell_ps):
        rows.append(
            [
                state,
                f"{result.residency.residency(state):.3%}",
                f"{result.residency.average_power(state) * 1e3:.1f} mW",
            ]
        )
    print(format_table(["state", "residency", "avg power"], rows,
                       title="Residency and per-state power"))

    print()
    print(f"Average power over {result.window_s:.0f} s of simulated standby: "
          f"{result.average_power_w * 1e3:.1f} mW")
    print(f"Entry flows: {len(result.entry_latencies_ps)}, "
          f"exit flows: {len(result.exit_latencies_ps)}")


if __name__ == "__main__":
    main()
