"""Scenario: record a night of activity, replay it on two platforms.

Activity traces decouple *what the device was asked to do* from *what
platform it ran on*: generate (or load) a timestamped trace, then replay
it against the baseline and the ODRIPS platform to get a like-for-like
energy comparison — including a CSV round trip, the way a fleet would
collect traces from real machines.

Run:  python examples/trace_replay.py
"""

from repro.analysis.report import format_table
from repro.core.odrips import ODRIPSController
from repro.core.techniques import TechniqueSet
from repro.workloads.traces import (
    ActivityTrace,
    TraceDrivenRunner,
    chatty_night_trace,
)


def replay(trace: ActivityTrace, techniques: TechniqueSet):
    platform = ODRIPSController(techniques).build_platform()
    runner = TraceDrivenRunner(platform, trace)
    return runner.run()


def main() -> None:
    trace = chatty_night_trace(
        duration_s=240.0, network_rate_per_minute=1.5, seed=99
    )
    print(f"Generated trace '{trace.label}': {trace.counts()} over "
          f"{trace.duration_s:.0f} s")

    # round-trip through CSV, as a trace collected from a real device would be
    csv_text = trace.to_csv()
    trace = ActivityTrace.from_csv(csv_text, label=trace.label)
    print(f"CSV round trip: {len(csv_text)} bytes, "
          f"{len(trace.events)} events reloaded\n")

    rows = []
    results = {}
    for label, techniques in [
        ("Baseline (DRIPS)", TechniqueSet.baseline()),
        ("ODRIPS", TechniqueSet.odrips()),
    ]:
        print(f"Replaying on {label}...")
        result = replay(trace, techniques)
        results[label] = result
        rows.append(
            [
                label,
                f"{result.average_power_w * 1e3:.2f} mW",
                f"{result.drips_residency:.2%}",
                len(result.wake_events),
            ]
        )
    print()
    print(format_table(
        ["platform", "avg power", "DRIPS residency", "wakes"],
        rows,
        title=f"Trace '{trace.label}' replayed on both platforms",
    ))
    saving = 1 - results["ODRIPS"].average_power_w / results["Baseline (DRIPS)"].average_power_w
    print()
    print(f"Same trace, same wakes - ODRIPS saves {saving:.1%} on this night.")


if __name__ == "__main__":
    main()
