"""Setuptools entry point.

The legacy ``setup.py`` path is kept because the reproduction environment
is offline: PEP 517 editable installs require the ``wheel`` package, which
is not available without network access.  ``pip install -e .`` works
through this file instead.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Techniques for Reducing the Connected-Standby "
        "Energy Consumption of Mobile Devices' (HPCA 2020): an ODRIPS "
        "platform power-management simulator"
    ),
    author="ODRIPS Reproduction Authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
