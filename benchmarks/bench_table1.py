"""Table 1: baseline and target system parameters."""

from repro.analysis.report import format_table
from repro.core.experiments import table1_parameters

from _bench import run_once


def test_table1_system_parameters(benchmark, emit):
    rows_data = run_once(benchmark, table1_parameters)
    rows = [[name, value, note] for name, (value, note) in rows_data.items()]
    emit(format_table(["parameter", "value", "process"], rows,
                      title="Table 1 - baseline and target system parameters"))

    assert "Skylake" in rows_data["Processor (target)"][0]
    assert "Sunrise Point-LP" in rows_data["Chipset (target)"][0]
    assert "8 GB" in rows_data["Memory"][0]
