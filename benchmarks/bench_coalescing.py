"""Extension (Sec. 3 Observation 1): the interrupt-coalescing economy.

The paper's latency argument rests on platform buffering: wake-ups can
be aggregated, which is why DRIPS can afford millisecond exit latencies.
This bench sweeps the coalescing window for a chatty notification stream
and shows the wake-rate/power/latency trade, plus the PCM wear-leveling
lifetime of the rotating context region.
"""

from repro.analysis.coalescing import coalescing_sweep, window_for_power_budget
from repro.analysis.report import format_table
from repro.memory.wear_leveling import years_to_wearout

from _bench import run_once


def test_extension_interrupt_coalescing(benchmark, emit):
    points = run_once(benchmark, coalescing_sweep, arrival_rate_hz=1.0)

    rows = [
        [
            f"{point.window_s:g} s",
            f"{point.wake_rate_hz:.3f} /s",
            f"{point.average_power_w * 1e3:.1f} mW",
            f"{point.worst_case_latency_s:g} s",
        ]
        for point in points
    ]
    emit(format_table(
        ["coalescing window", "wake rate", "avg power", "worst-case latency"],
        rows,
        title="Sec. 3 Obs. 1 - coalescing a 1 Hz notification stream",
    ))

    powers = [point.average_power_w for point in points]
    assert powers == sorted(powers, reverse=True)
    # a 75 mW budget (the paper's connected-standby average) needs well
    # under a second of coalescing even against a 1 Hz stream
    window = window_for_power_budget(1.0, power_budget_w=0.075)
    assert 0 < window < 1.0


def test_extension_pcm_wear_leveling(benchmark, emit):
    def estimates():
        return {
            "fixed slot (no leveling)": years_to_wearout(200 * 1024, 200 * 1024),
            "rotating over 64 MB region": years_to_wearout(64 * (1 << 20), 200 * 1024),
        }

    results = run_once(benchmark, estimates)
    rows = [
        [label, estimate.slots, f"{estimate.years:,.0f} years"]
        for label, estimate in results.items()
    ]
    emit(format_table(
        ["placement policy", "slots", "time to wearout"],
        rows,
        title="Sec. 6.1 endurance concern - ODRIPS-PCM context lifetime",
    ))

    assert results["rotating over 64 MB region"].years > 100 * results[
        "fixed slot (no leveling)"
    ].years
