"""Sec. 6.3: latency of transferring the processor context to/from the
SGX-protected DRAM region.

Paper (FPGA emulation, post-silicon validated at 95 % accuracy): ~18 us
to write the ~200 KB context, ~13 us to read it back, on DDR3-1600.
"""

from repro.analysis.report import format_table
from repro.core.experiments import sec63_context_latency

from _bench import run_once


def test_sec63_context_save_restore_latency(benchmark, emit):
    result = run_once(benchmark, sec63_context_latency)

    rows = [
        ["context size", f"{result.context_bytes // 1024} KB", "~200 KB"],
        ["save (write to DRAM)", f"{result.save_us:.1f} us", "~18 us"],
        ["restore (read from DRAM)", f"{result.restore_us:.1f} us", "~13 us"],
        ["share of 64 MB SGX region", f"{result.sgx_region_fraction:.2%}", "<0.3 %"],
    ]
    emit(format_table(["quantity", "measured", "paper"], rows,
                      title="Sec. 6.3 - context transfer latency through the MEE"))

    assert abs(result.save_us - 18.0) / 18.0 < 0.25
    assert abs(result.restore_us - 13.0) / 13.0 < 0.35
    assert result.save_us > result.restore_us
