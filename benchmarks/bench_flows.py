"""Sec. 7 flow characteristics: entry/exit latency and residencies.

Paper: the baseline platform enters DRIPS in ~200 us, exits in ~300 us,
spends ~30 s idle per cycle, and lands at 99.5 % DRIPS residency; ODRIPS
adds a few tens of microseconds per transition.
"""

from repro.analysis.report import format_table
from repro.core.odrips import ODRIPSController
from repro.core.techniques import TechniqueSet

from _bench import run_once


def test_flow_latencies_baseline_vs_odrips(benchmark, emit):
    def measure():
        out = {}
        for label, techniques in [
            ("Baseline", TechniqueSet.baseline()),
            ("ODRIPS", TechniqueSet.odrips()),
        ]:
            measurement = ODRIPSController(techniques).measure(cycles=2)
            out[label] = measurement
        return out

    results = run_once(benchmark, measure)

    rows = []
    for label, measurement in results.items():
        rows.append(
            [
                label,
                f"{measurement.entry_latency_us:.0f} us",
                f"{measurement.exit_latency_us:.0f} us",
                f"{measurement.drips_residency:.2%}",
            ]
        )
    rows.append(["paper (baseline)", "~200 us", "~300 us", "99.5 %"])
    emit(format_table(
        ["configuration", "entry latency", "exit latency", "DRIPS residency"],
        rows,
        title="Sec. 7 - flow latencies and residency",
    ))

    baseline = results["Baseline"]
    odrips = results["ODRIPS"]
    assert abs(baseline.entry_latency_us - 200) < 15
    assert abs(baseline.exit_latency_us - 300) < 15
    # ODRIPS adds tens of microseconds, not milliseconds
    assert 10 < odrips.exit_latency_us - baseline.exit_latency_us < 200
    assert 10 < odrips.entry_latency_us - baseline.entry_latency_us < 200
