"""Ablation (Sec. 5.1): embedded power gate vs on-board FET.

Paper: the FET is chosen because it leaks less, needs no extra processor
pins, and requires less processor design effort; its off-state leakage is
below 0.3 % of the gated load.
"""

from repro.analysis.ablations import gate_ablation
from repro.analysis.report import format_table

from _bench import run_once


def test_ablation_epg_vs_fet(benchmark, emit):
    rows_data = run_once(benchmark, gate_ablation)

    rows = [
        [
            row.gate,
            f"{row.off_leakage_mw * 1e3:.1f} uW",
            f"{row.on_overhead_mw * 1e3:.1f} uW",
            "yes" if row.needs_processor_pins else "no",
        ]
        for row in rows_data
    ]
    emit(format_table(
        ["gate option", "off-state leakage", "on-state overhead", "extra proc pins"],
        rows,
        title="Sec. 5.1 ablation - gating the AON IO bank",
    ))

    epg, fet = rows_data
    assert fet.off_leakage_mw < epg.off_leakage_mw
    assert not fet.needs_processor_pins
    # paper's bound: < 0.3 % of the gated load (4.2 mW)
    assert fet.off_leakage_mw < 0.003 * 4.2
