"""Ablation (Sec. 4.1.1): where should the slow timer live?

Paper: bringing the 32 kHz crystal into the processor would also allow
killing the 24 MHz crystal, but costs extra (expensive) IO pins and their
power — and leaves the processor as the wake hub, blocking the AON IO
gating of technique 2.  The chipset-side dual timer wins on all counts.
"""

from repro.analysis.ablations import timer_location_ablation
from repro.analysis.report import format_table

from _bench import run_once


def test_ablation_timer_location(benchmark, emit):
    rows_data = run_once(benchmark, timer_location_ablation)

    rows = [
        [
            row.design,
            f"{row.drips_saving_mw:.2f} mW",
            row.extra_processor_pins,
            "yes" if row.enables_io_gating else "no",
        ]
        for row in rows_data
    ]
    emit(format_table(
        ["design alternative", "DRIPS saving", "extra pins", "enables AON-IO-GATE"],
        rows,
        title="Sec. 4.1.1 ablation - slow-timer location",
    ))

    into_processor, into_chipset = rows_data
    assert into_chipset.drips_saving_mw > into_processor.drips_saving_mw
    assert into_chipset.extra_processor_pins == 0
    assert into_chipset.enables_io_gating and not into_processor.enables_io_gating
