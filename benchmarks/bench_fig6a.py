"""Fig. 6(a): platform average power and energy break-even point for the
baseline and the three power-reduction techniques plus ODRIPS.

Paper: savings of 6 % (WAKE-UP-OFF), 13 % (AON-IO-GATE), 8 %
(CTX-SGX-DRAM), 22 % (ODRIPS); break-even points 6.6 / 6.3 / 7.4 /
6.5 ms.
"""

from repro.analysis.report import format_table
from repro.core.experiments import fig6a_techniques

from _bench import run_once


def test_fig6a_average_power_savings(benchmark, emit):
    result = run_once(benchmark, fig6a_techniques, cycles=2)

    rows = [["Baseline (DRIPS)", f"{result.baseline_mw:.1f} mW", "-", "-", "-"]]
    for row in result.rows:
        rows.append(
            [
                row.label,
                f"{row.average_power_mw:.1f} mW",
                f"{row.saving:.1%}",
                f"{row.paper_saving:.0%}",
                f"{row.paper_break_even_ms:.1f} ms",
            ]
        )
    emit(format_table(
        ["configuration", "avg power", "saving", "paper saving", "paper break-even"],
        rows,
        title="Fig. 6(a) - technique average-power savings",
    ))

    for row in result.rows:
        assert abs(row.saving - row.paper_saving) < 0.015, row.label


def test_fig6a_break_even_points(benchmark, emit):
    """The blue line of Fig. 6(a): residency sweep + bisection per bar."""
    result = run_once(
        benchmark, fig6a_techniques, cycles=3, with_break_even=True,
        break_even_iterations=9,
    )

    rows = [
        [row.label, f"{row.break_even_ms:.1f} ms", f"{row.paper_break_even_ms:.1f} ms"]
        for row in result.rows
    ]
    emit(format_table(
        ["configuration", "measured break-even", "paper break-even"],
        rows,
        title="Fig. 6(a) - DRIPS residency break-even points",
    ))

    for row in result.rows:
        assert row.break_even_ms is not None
        # same millisecond ballpark as the silicon measurement
        assert abs(row.break_even_ms - row.paper_break_even_ms) < 2.0, row.label
