"""Ablation (Sec. 6.2): the MEE metadata cache.

Paper: "To alleviate performance overheads, the MEE is equipped with an
internal 'MEE cache' that stores the metadata of the authentication
tree."  This sweep shows DRAM metadata traffic per protected read
collapsing as the cache grows.
"""

from repro.analysis.ablations import mee_cache_ablation
from repro.analysis.report import format_table

from _bench import run_once


def test_ablation_mee_cache_size(benchmark, emit):
    rows_data = run_once(benchmark, mee_cache_ablation)

    rows = [
        [
            row.cache_nodes,
            f"{row.hit_rate:.1%}",
            f"{row.metadata_accesses_per_read:.2f}",
        ]
        for row in rows_data
    ]
    emit(format_table(
        ["cache capacity (nodes)", "hit rate", "DRAM metadata accesses / read"],
        rows,
        title="Sec. 6.2 ablation - MEE metadata cache size",
    ))

    assert rows_data[-1].hit_rate > rows_data[0].hit_rate
    assert (
        rows_data[-1].metadata_accesses_per_read
        < rows_data[0].metadata_accesses_per_read
    )
