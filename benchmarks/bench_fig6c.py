"""Fig. 6(c): ODRIPS average power while scaling DRAM frequency.

Paper: vs DDR3L-1600, running at 1.067 GHz saves ~0.3 % and at 0.8 GHz
~0.7 %, while the lower bandwidth stretches the entry/exit flows (the
context save/restore takes longer).
"""

from repro.analysis.report import format_table
from repro.core.experiments import fig6c_dram_frequency, sec63_context_latency
from repro.config import PlatformConfig, skylake_config
import dataclasses

from _bench import run_once


def test_fig6c_dram_frequency_scaling(benchmark, emit):
    rows_data = run_once(benchmark, fig6c_dram_frequency, cycles=2)

    rows = []
    for row in rows_data:
        paper = "-" if row.paper_delta is None else f"{row.paper_delta:+.1%}"
        rows.append(
            [
                f"{row.parameter / 1e9:.3f} GHz",
                f"{row.average_power_mw:.2f} mW",
                f"{row.delta_vs_reference:+.2%}",
                paper,
            ]
        )
    emit(format_table(
        ["DRAM rate", "avg power", "delta vs 1.6 GHz", "paper delta"],
        rows,
        title="Fig. 6(c) - effect of reducing DRAM frequency (ODRIPS)",
    ))

    deltas = {row.parameter: row.delta_vs_reference for row in rows_data}
    assert deltas[0.8e9] < deltas[1.067e9] < 0
    assert abs(deltas[0.8e9] - (-0.007)) < 0.006


def test_fig6c_lower_bandwidth_stretches_context_transfer(benchmark, emit):
    """Observation 2 of Sec. 8.2: save/restore latency grows as DRAM slows."""

    def measure():
        out = []
        for rate in (1.6e9, 1.067e9, 0.8e9):
            config = dataclasses.replace(skylake_config(), dram_rate_hz=rate)
            result = sec63_context_latency(config)
            out.append((rate, result.save_us, result.restore_us))
        return out

    points = run_once(benchmark, measure)
    rows = [
        [f"{rate / 1e9:.3f} GHz", f"{save:.1f} us", f"{restore:.1f} us"]
        for rate, save, restore in points
    ]
    emit(format_table(
        ["DRAM rate", "context save", "context restore"],
        rows,
        title="Fig. 6(c) companion - context transfer vs DRAM frequency",
    ))

    saves = [save for _r, save, _x in points]
    assert saves[0] < saves[1] < saves[2]
