"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper and prints the
paper-vs-measured rows to the terminal (bypassing pytest capture), then
registers the simulation run with pytest-benchmark so ``--benchmark-only``
also reports wall-clock cost.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def emit(capsys):
    """Print ``text`` straight to the terminal, outside pytest capture."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _emit
