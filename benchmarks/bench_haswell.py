"""Generation comparison: Haswell-ULT baseline vs Skylake (Table 1, Sec. 3).

The paper measured its baseline numbers on Haswell-ULT (22 nm) and scaled
them to Skylake (14 nm).  Two facts from the text are checked here:

* Haswell's DRIPS (C10) exit latency is ~3 ms; "the voltage regulator
  re-initialization latency was optimized in the Skylake platform and
  reduced to few hundreds of microseconds" (Sec. 3).
* The 22 nm parts draw more leakage than their 14 nm equivalents (the
  scaling step of the Sec. 7 methodology).
"""

from repro.analysis.report import format_table
from repro.analysis.scaling import scaling_factor
from repro.config import PROCESS_14NM, PROCESS_22NM, haswell_config, skylake_config
from repro.core.odrips import ODRIPSController
from repro.core.techniques import TechniqueSet

from _bench import run_once


def test_haswell_vs_skylake_baseline(benchmark, emit):
    def measure():
        results = {}
        for label, config in [("Haswell-ULT", haswell_config()),
                              ("Skylake", skylake_config())]:
            controller = ODRIPSController(TechniqueSet.baseline(), config=config)
            results[label] = controller.measure(cycles=1)
        return results

    results = run_once(benchmark, measure)

    rows = []
    for label, measurement in results.items():
        rows.append(
            [
                label,
                f"{measurement.drips_power_w * 1e3:.1f} mW",
                f"{measurement.exit_latency_us:.0f} us",
                f"{measurement.average_power_w * 1e3:.1f} mW",
            ]
        )
    rows.append(["paper (Haswell exit)", "-", "~3000 us", "-"])
    emit(format_table(
        ["platform", "DRIPS power", "exit latency", "avg power"],
        rows,
        title="Generation comparison - Haswell-ULT (22nm) vs Skylake (14nm)",
    ))

    haswell = results["Haswell-ULT"]
    skylake = results["Skylake"]
    assert abs(haswell.exit_latency_us - 3000) < 100   # C10 exit ~3 ms
    assert abs(skylake.exit_latency_us - 300) < 15
    assert haswell.drips_power_w > skylake.drips_power_w  # 22nm leaks more


def test_process_scaling_factors(benchmark, emit):
    def factors():
        return {
            "leakage": scaling_factor(PROCESS_22NM, PROCESS_14NM, "leakage"),
            "dynamic": scaling_factor(PROCESS_22NM, PROCESS_14NM, "dynamic"),
        }

    result = run_once(benchmark, factors)
    rows = [
        ["leakage power (22nm -> 14nm)", f"x{result['leakage']:.2f}"],
        ["dynamic power (22nm -> 14nm)", f"x{result['dynamic']:.2f}"],
    ]
    emit(format_table(["power term", "scaling factor"], rows,
                      title="Sec. 7 - process scaling step"))
    assert result["leakage"] < 1.0
    assert result["dynamic"] < 1.0
