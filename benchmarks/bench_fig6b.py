"""Fig. 6(b): ODRIPS average power while scaling core frequency.

Paper: vs the 0.8 GHz baseline, 1.0 GHz saves ~1.4 % and 1.5 GHz costs
~1 % — the best frequency for connected standby lies strictly between.
"""

from repro.analysis.report import format_table
from repro.core.experiments import fig6b_core_frequency

from _bench import run_once


def test_fig6b_core_frequency_scaling(benchmark, emit):
    rows_data = run_once(benchmark, fig6b_core_frequency, cycles=2)

    rows = []
    for row in rows_data:
        paper = "-" if row.paper_delta is None else f"{row.paper_delta:+.1%}"
        rows.append(
            [
                f"{row.parameter:.1f} GHz",
                f"{row.average_power_mw:.2f} mW",
                f"{row.delta_vs_reference:+.2%}",
                paper,
            ]
        )
    emit(format_table(
        ["core frequency", "avg power", "delta vs 0.8 GHz", "paper delta"],
        rows,
        title="Fig. 6(b) - effect of increasing core frequency (ODRIPS)",
    ))

    deltas = {row.parameter: row.delta_vs_reference for row in rows_data}
    assert deltas[1.0] < 0 < deltas[1.5]
    assert abs(deltas[1.0] - (-0.014)) < 0.01
    assert abs(deltas[1.5] - 0.01) < 0.01
