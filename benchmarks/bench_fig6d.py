"""Fig. 6(d): ODRIPS with emerging memory technologies for the context.

Paper: ODRIPS-MRAM is slightly below ODRIPS with the lowest break-even
point; ODRIPS-PCM cuts baseline average power by 37 % (an extra ~15 %
over ODRIPS) because PCM's non-volatility removes both DRAM self-refresh
and the CKE drive.
"""

from repro.analysis.report import format_table
from repro.core.experiments import fig6d_emerging_memories

from _bench import run_once


def test_fig6d_emerging_memories(benchmark, emit):
    rows_data = run_once(benchmark, fig6d_emerging_memories, cycles=2)

    rows = [
        [
            row.label,
            f"{row.average_power_mw:.1f} mW",
            f"{row.saving_vs_baseline:.1%}",
            f"{row.paper_saving:.1%}",
        ]
        for row in rows_data
    ]
    emit(format_table(
        ["configuration", "avg power", "saving vs baseline", "paper"],
        rows,
        title="Fig. 6(d) - emerging memory technologies",
    ))

    savings = {row.label: row.saving_vs_baseline for row in rows_data}
    assert savings["ODRIPS-PCM"] > savings["ODRIPS-MRAM"] >= savings["ODRIPS"] - 0.002
    assert abs(savings["ODRIPS-PCM"] - 0.37) < 0.025


def test_fig6d_mram_has_lowest_break_even(benchmark, emit):
    """Fig. 6(d) observation 1: ODRIPS-MRAM's break-even is the lowest."""
    rows_data = run_once(benchmark, fig6d_emerging_memories, cycles=3,
                         with_break_even=True)
    rows = [
        [row.label, f"{row.break_even_ms:.1f} ms"] for row in rows_data
        if row.break_even_ms is not None
    ]
    emit(format_table(["configuration", "break-even"], rows,
                      title="Fig. 6(d) - break-even points"))

    by_label = {row.label: row.break_even_ms for row in rows_data}
    assert by_label["ODRIPS-MRAM"] < by_label["ODRIPS"]
    assert by_label["ODRIPS-MRAM"] < by_label["ODRIPS-PCM"]
