"""Sec. 4.1.3: Step register sizing and timer precision.

Paper: for 1 ppb precision at 24 MHz / 32.768 kHz the Step needs m = 10
integer and f = 21 fractional bits; the calibration counts fast edges
over 2^f slow cycles and runs once per reset.
"""

from repro.analysis.report import format_table
from repro.clocks.crystal import CrystalOscillator
from repro.core.experiments import sec413_calibration
from repro.timers.calibration import StepCalibrator

from _bench import run_once


def test_sec413_step_register_sizing(benchmark, emit):
    result = run_once(benchmark, sec413_calibration)

    rows = [
        ["integer bits m (Eq. 2)", result.integer_bits, result.paper_integer_bits],
        ["fractional bits f (Eq. 4)", result.fractional_bits, result.paper_fractional_bits],
        ["worst-case drift", f"{result.worst_case_drift_ppb:.2f} ppb", "<1 ppb"],
    ]
    emit(format_table(["quantity", "measured", "paper"], rows,
                      title="Sec. 4.1.3 - Step register sizing"))

    assert result.integer_bits == 10
    assert result.fractional_bits == 21


def test_sec413_calibration_accuracy(benchmark, emit):
    """Run the actual calibration and compare Step to the true ratio."""

    def calibrate():
        fast = CrystalOscillator("x24", 24e6, ppm_error=10.0)
        slow = CrystalOscillator("x32", 32768.0, ppm_error=-5.0)
        calibrator = StepCalibrator.for_precision(fast, slow)
        result = calibrator.run(0)
        true_ratio = fast.effective_hz / slow.effective_hz
        return result, true_ratio

    result, true_ratio = run_once(benchmark, calibrate)
    error_ppb = abs(result.step.to_float() / true_ratio - 1.0) * 1e9

    rows = [
        ["calibration window", f"{result.duration_ps / 1e12:.1f} s", "several seconds"],
        ["N_slow (2^f cycles)", result.n_slow, 2**21],
        ["measured Step", f"{result.step.to_float():.7f}", "-"],
        ["true frequency ratio", f"{true_ratio:.7f}", "-"],
        ["Step error", f"{error_ppb:.2f} ppb", "~1 ppb"],
    ]
    emit(format_table(["quantity", "measured", "paper"], rows,
                      title="Sec. 4.1.3 - run-time Step calibration"))

    assert error_ppb < 2.0
