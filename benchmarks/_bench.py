"""Importable helpers for the benchmark files.

Lives in its own module (not conftest.py) so that the name does not
collide with tests/conftest.py when both trees are collected in one
pytest invocation.
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark clock.

    The experiments are deterministic simulations, not microbenchmarks;
    one round gives the meaningful wall-clock figure without multiplying
    multi-second runs.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
