"""Fig. 1(b): breakdown of platform power consumption in DRIPS.

Paper: ~60 mW total at 30 C with 8 GB DDR3L-1600; processor 18 %; within
it the wake-up hardware ~5 % (timer/monitor + 24 MHz crystal), AON IOs
7 %, S/R SRAMs 9 %.
"""

from repro.analysis.report import format_table
from repro.core.experiments import fig1b_breakdown

from _bench import run_once


def test_fig1b_drips_power_breakdown(benchmark, emit):
    result = run_once(benchmark, fig1b_breakdown)

    rows = [
        ["platform DRIPS power", f"{result.platform_drips_mw:.1f} mW", "~60 mW"],
        ["wake-up hw (timer + 24 MHz XTAL)", f"{result.wakeup_and_crystal:.1%}", "~5 %"],
        ["AON IOs", f"{result.shares['aon_ios']:.1%}", "7 %"],
        ["S/R SRAMs", f"{result.shares['sr_srams']:.1%}", "9 %"],
        ["processor total", f"{result.processor_total:.1%}", "18 %"],
        ["chipset", f"{result.shares['chipset']:.1%}", "-"],
        ["DRAM self-refresh", f"{result.shares['dram_self_refresh']:.1%}", "-"],
        ["rest of board", f"{result.shares['board_other']:.1%}", "-"],
    ]
    emit(format_table(["component", "measured", "paper"], rows,
                      title="Fig. 1(b) - DRIPS power breakdown"))

    assert abs(result.wakeup_and_crystal - 0.05) < 0.01
    assert abs(result.shares["aon_ios"] - 0.07) < 0.01
    assert abs(result.shares["sr_srams"] - 0.09) < 0.01
    assert abs(result.processor_total - 0.18) < 0.01
