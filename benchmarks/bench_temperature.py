"""Extension: DRIPS power vs temperature (the Fig. 1(b) "30 C" qualifier).

The paper measures its ~60 mW DRIPS power "at 30 C" because most of the
DRIPS budget is leakage, and leakage roughly doubles every ~22 C.  This
sweep quantifies how much that qualifier matters.
"""

from repro.analysis.report import format_table
from repro.analysis.scaling import drips_power_at_temperature
from repro.config import skylake_config

from _bench import run_once


def test_extension_drips_power_vs_temperature(benchmark, emit):
    budget = skylake_config().budget

    def sweep():
        return [
            (temp, drips_power_at_temperature(budget, temp))
            for temp in (10.0, 20.0, 30.0, 40.0, 50.0, 60.0)
        ]

    points = run_once(benchmark, sweep)
    reference = dict(points)[30.0]
    rows = [
        [f"{temp:.0f} C", f"{watts * 1e3:.1f} mW", f"{watts / reference - 1:+.1%}"]
        for temp, watts in points
    ]
    emit(format_table(
        ["temperature", "DRIPS power", "delta vs 30 C"],
        rows,
        title="Extension - DRIPS power vs temperature",
    ))

    by_temp = dict(points)
    assert by_temp[30.0] * 1e3 == round(budget.platform_total_w() * 1e3, 6)
    assert by_temp[50.0] > by_temp[30.0] > by_temp[10.0]
    # leakage dominance: +20 C costs tens of percent, not single digits
    assert (by_temp[50.0] / by_temp[30.0] - 1) > 0.15
