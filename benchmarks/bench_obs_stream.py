"""Microbenchmarks for the live streaming-telemetry pipeline.

Two guards keep ``repro.obs.stream`` honest:

* **Disabled overhead** — with no stream installed the hot seams pay one
  attribute load + ``is None`` test per standby cycle (plus one
  ``active_stream()`` lookup per run).  The fig2 bench prices that guard
  directly and asserts it stays under 5% of the dark run.
* **Enabled overhead** — streaming a 7-day cycle-compiled macro run
  (heartbeats + bounded histograms per macro step) must stay cheap
  enough to leave on, and must leave the simulation results bit-for-bit
  identical to a telemetry-disabled run.

Figures merge into ``BENCH_perf.json`` (other benches' entries are
preserved) so ``python -m repro report`` can watch both ceilings.

Run with ``pytest benchmarks/bench_obs_stream.py --benchmark-only``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.config import StandbyWorkloadConfig
from repro.core.experiments import fig2_connected_standby
from repro.core.odrips import ODRIPSController
from repro.obs.stream import TelemetryStream, active_stream, streaming
from repro.sim.macro import cycles_for_horizon

from _bench import run_once

#: The telemetry off-switch ceiling (ISSUE acceptance criterion; the
#: regress watchdog carries the same limit).
MAX_DISABLED_OVERHEAD_FRAC = 0.05

#: Streaming a week-scale macro run must stay cheap enough to leave on.
MAX_ENABLED_OVERHEAD_FRAC = 0.25

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

_results: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Merge this module's figures into BENCH_perf.json on teardown.

    Unlike bench_perf_engine (which owns the file and rewrites it whole),
    this module merges: existing benches from other harnesses survive.
    """
    yield
    if not _results:
        return
    payload = {"schema": "repro-bench-perf/1", "benches": {}}
    if BENCH_JSON.exists():
        try:
            payload = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            pass
    payload.setdefault("benches", {}).update(_results)
    payload.setdefault("generated_by", "benchmarks/bench_obs_stream.py")
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _guard_cost_s() -> float:
    """Price one disabled-path telemetry guard: attribute load + None test."""

    class Probe:
        _stream = None

    probe = Probe()
    iterations = 200_000
    t0 = time.perf_counter()
    for _ in range(iterations):
        stream = probe._stream
        if stream is not None:  # pragma: no cover - never taken
            raise AssertionError
    return (time.perf_counter() - t0) / iterations


def _lookup_cost_s() -> float:
    """Price one ``active_stream()`` lookup (paid once per run/measure)."""
    iterations = 100_000
    t0 = time.perf_counter()
    for _ in range(iterations):
        active_stream()
    return (time.perf_counter() - t0) / iterations


def test_stream_overhead_fig2(benchmark, emit):
    """Telemetry disabled on fig2: the guard must cost under 5% of the run.

    The disabled path's *only* added work is the per-cycle guard and two
    ``active_stream()`` lookups, so the overhead is priced analytically
    (micro-benched guard cost x guard evaluations / dark wall) — the
    delta is far below run-to-run simulation noise, so an A/B wall-clock
    diff could not resolve it.  A streamed run is also timed for the
    enabled figure, and its simulation results must match the dark run
    bit-for-bit.
    """
    cycles = 3
    fig2_connected_standby(cycles=cycles)  # warm imports outside both clocks

    dark = run_once(benchmark, fig2_connected_standby, cycles=cycles)
    dark_s = min(benchmark.stats.stats.data)

    stream = TelemetryStream()
    t0 = time.perf_counter()
    with streaming(stream):
        lit = fig2_connected_standby(cycles=cycles)
    enabled_s = time.perf_counter() - t0

    # purity gate: streaming must never perturb the simulation
    assert lit.average_power_mw == dark.average_power_mw
    assert lit.drips_residency == dark.drips_residency

    # one observation per runner cycle (the runner may pad the caller's
    # cycle count to close its measurement window; the heartbeat is the
    # ground truth for how many cycles actually ran)
    hist = stream.histograms["cycle.duration_s"]
    assert hist.count == stream.heartbeats["runner"]["done"] >= cycles

    guard_s = _guard_cost_s()
    lookup_s = _lookup_cost_s()
    # one guard per standby cycle + one active_stream() in run() and one
    # in measure()
    cycles_run = stream.heartbeats["runner"]["done"]
    disabled_overhead_s = guard_s * cycles_run + lookup_s * 2
    disabled_frac = disabled_overhead_s / dark_s
    assert disabled_frac < MAX_DISABLED_OVERHEAD_FRAC
    enabled_frac = enabled_s / dark_s - 1.0
    _results["obs_stream_fig2"] = {
        "wall_s": dark_s,
        "enabled_wall_s": enabled_s,
        "enabled_overhead_frac": enabled_frac,
        "guard_cost_ns": guard_s * 1e9,
        "lookup_cost_ns": lookup_s * 1e9,
        "guard_evaluations": cycles_run + 2,
        "disabled_overhead_frac": disabled_frac,
    }
    emit(
        f"stream on fig2: dark {dark_s:.2f} s, streamed {enabled_s:.2f} s "
        f"({enabled_frac:+.1%}); disabled guard {guard_s * 1e9:.0f} ns x "
        f"{cycles_run + 2} = {disabled_frac:.2e} of the run "
        "(results bit-for-bit)"
    )


def test_stream_overhead_week(benchmark, emit):
    """7 simulated days of fig2 macro-stepping with live telemetry on.

    Heartbeats and bounded-histogram observations fire per macro step,
    not per cycle, so the enabled cost must stay within the 25% ceiling
    — and the macro results (power, residency, wakes) must be
    bit-for-bit identical to the telemetry-disabled run.
    """
    workload = StandbyWorkloadConfig()
    cycles = cycles_for_horizon(
        7.0, workload.idle_interval_s, workload.maintenance_mean_s
    )

    ODRIPSController().measure_raw(cycles=200, macro=True)  # warm imports
    t0 = time.perf_counter()
    dark = ODRIPSController().measure_raw(cycles=cycles, macro=True)
    dark_s = time.perf_counter() - t0

    stream = TelemetryStream()
    with streaming(stream):
        lit = run_once(
            benchmark, ODRIPSController().measure_raw, cycles=cycles, macro=True
        )
    enabled_s = min(benchmark.stats.stats.data)

    # purity gate: bit-for-bit, not within-tolerance
    assert lit.average_power_w == dark.average_power_w
    assert lit.residency == dark.residency
    assert lit.wake_events == dark.wake_events

    beats = stream.heartbeats
    assert "macro" in beats and beats["macro"]["done"] >= cycles - 10
    overhead = enabled_s / dark_s - 1.0
    assert overhead < MAX_ENABLED_OVERHEAD_FRAC
    _results["obs_stream_week"] = {
        "wall_s": enabled_s,
        "dark_wall_s": dark_s,
        "enabled_overhead_frac": overhead,
        "horizon_days": 7.0,
        "cycles": cycles,
        "macro_steps": lit.macro["macro_steps"],
        "stream_histograms": len(stream.histograms),
    }
    emit(
        f"stream on macro week: dark {dark_s * 1e3:.0f} ms, streamed "
        f"{enabled_s * 1e3:.0f} ms ({overhead:+.1%}, {cycles} cycles, "
        "results bit-for-bit)"
    )
