"""Sec. 7: power-model validation.

The paper built an analytical power model before silicon and validated
it post-fabrication: "We found that the accuracy of our power-model is
approximately 95%."  We replay the workflow: the closed-form Equation-1
prediction (from the component budget alone) against the full simulation
for every configuration.
"""

from repro.analysis.report import format_table
from repro.analysis.validation import validate_power_model

from _bench import run_once


def test_sec7_power_model_validation(benchmark, emit):
    report = run_once(benchmark, validate_power_model, cycles=1)

    rows = [
        [row.label, f"{row.predicted_mw:.2f} mW", f"{row.measured_mw:.2f} mW",
         f"{row.accuracy:.1%}"]
        for row in report.rows
    ]
    rows.append(["paper", "-", "-", "~95 %"])
    emit(format_table(
        ["configuration", "model prediction", "simulated measurement", "accuracy"],
        rows,
        title="Sec. 7 - analytical power model vs 'post-silicon' simulation",
    ))

    # the paper's bar: approximately 95% accurate
    assert report.worst_accuracy > 0.95
