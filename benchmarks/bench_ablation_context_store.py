"""Ablation (Secs. 6.1 / 8.3): where should the processor context live?

Paper: chipset SRAM leaks 5x less than processor SRAM but still leaks;
protected DRAM costs 'zero' additional standby power (the DRAM
self-refreshes anyway); eMRAM holds the context with its supply off.
"""

from repro.analysis.ablations import context_store_ablation
from repro.analysis.report import format_table

from _bench import run_once


def test_ablation_context_store(benchmark, emit):
    rows_data = run_once(benchmark, context_store_ablation, cycles=1)

    rows = [
        [
            row.store,
            f"{row.average_power_mw:.2f} mW",
            f"{row.saving_vs_baseline:.1%}",
            f"{row.exit_latency_us:.0f} us",
        ]
        for row in rows_data
    ]
    emit(format_table(
        ["context store", "avg power", "saving", "exit latency"],
        rows,
        title="Sec. 6.1 ablation - context-store alternatives",
    ))

    by_store = {row.store: row for row in rows_data}
    baseline = by_store["processor SRAM (baseline)"]
    chipset = by_store["chipset SRAM (Sec. 6.1 alt. 2)"]
    dram = by_store["SGX-protected DRAM (chosen)"]
    # chipset SRAM helps but less than DRAM ("still consume some power")
    assert 0 < chipset.saving_vs_baseline < dram.saving_vs_baseline
