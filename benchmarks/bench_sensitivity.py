"""Robustness: sensitivity of the 22 % headline to the calibration inputs.

A reproduction built on measured constants must show which constants the
conclusion leans on.  The tornado sweeps each component-power input by
±25 % through the closed-form model; the workload sweep varies the idle
interval around the paper's 30 s.
"""

from repro.analysis.report import format_table
from repro.analysis.sensitivity import budget_sensitivity, workload_sensitivity

from _bench import run_once


def test_sensitivity_tornado(benchmark, emit):
    rows_data = run_once(benchmark, budget_sensitivity)

    rows = [
        [
            row.parameter,
            f"{row.saving_low:.1%}",
            f"{row.saving_nominal:.1%}",
            f"{row.saving_high:.1%}",
            f"{row.swing:.2%}",
        ]
        for row in rows_data
    ]
    emit(format_table(
        ["constant (±25%)", "saving @ -25%", "nominal", "saving @ +25%", "swing"],
        rows,
        title="Sensitivity of the ODRIPS saving to calibration constants",
    ))

    # the conclusion survives every single-constant misestimate of ±25%
    for row in rows_data:
        assert min(row.saving_low, row.saving_high) > 0.15


def test_sensitivity_idle_interval(benchmark, emit):
    points = run_once(benchmark, workload_sensitivity)

    rows = [[f"{idle:.0f} s", f"{saving:.1%}"] for idle, saving in points]
    emit(format_table(
        ["idle interval", "ODRIPS saving"],
        rows,
        title="Headline saving vs connected-standby idle interval",
    ))

    by_idle = dict(points)
    assert by_idle[30.0] > 0.21
    assert by_idle[5.0] > 0.10  # even a 6x-chattier system keeps half the win
    assert by_idle[120.0] < 0.28  # asymptote: the pure-DRIPS ratio
