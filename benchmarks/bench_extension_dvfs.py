"""Extension (Sec. 8.2 recommendation): dynamic memory DVFS.

The paper: statically reducing DRAM frequency is "likely not a good
strategy ... it might be more efficient to apply dynamic voltage and
frequency scaling to main memory".  We implement the recommendation and
evaluate it over a mixed day (21 h standby + 3 h interactive use).
"""

from repro.analysis.report import format_table
from repro.memory.dvfs import memory_dvfs_comparison

from _bench import run_once


def test_extension_dynamic_memory_dvfs(benchmark, emit):
    results = run_once(benchmark, memory_dvfs_comparison, cycles=1)

    rows = [
        [
            row.policy,
            f"{row.standby_power_mw:.2f} mW",
            f"{row.interactive_slowdown:.2f}x",
            f"{row.day_energy_wh:.2f} Wh",
        ]
        for row in results
    ]
    emit(format_table(
        ["policy", "standby avg power", "interactive runtime", "energy / day"],
        rows,
        title="Sec. 8.2 extension - memory DVFS policies over a mixed day",
    ))

    by_policy = {row.policy: row for row in results}
    dynamic = by_policy["dynamic DVFS (recommended)"]
    assert dynamic.day_energy_wh == min(row.day_energy_wh for row in results)
