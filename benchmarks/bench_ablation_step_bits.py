"""Ablation (Sec. 4.1.3): Step fractional bits vs drift vs calibration time.

Paper: Eq. 4 yields f = 21 for 1 ppb; fewer bits drift more, more bits
calibrate longer (the window spans 2^f slow cycles).
"""

from repro.analysis.ablations import step_bits_ablation
from repro.analysis.report import format_table

from _bench import run_once


def test_ablation_step_fractional_bits(benchmark, emit):
    rows_data = run_once(benchmark, step_bits_ablation)

    rows = [
        [
            row.fractional_bits,
            f"{row.worst_case_drift_ppb:.2f} ppb",
            "yes" if row.meets_1ppb else "no",
            f"{row.calibration_seconds:.1f} s",
        ]
        for row in rows_data
    ]
    emit(format_table(
        ["fractional bits f", "worst-case drift", "meets 1 ppb", "calibration time"],
        rows,
        title="Sec. 4.1.3 ablation - Step precision vs calibration cost",
    ))

    by_bits = {row.fractional_bits: row for row in rows_data}
    assert not by_bits[20].meets_1ppb
    assert by_bits[21].meets_1ppb  # the paper's choice is the knee
    drifts = [row.worst_case_drift_ppb for row in rows_data]
    assert drifts == sorted(drifts, reverse=True)
