"""Fig. 2: average power of the connected-standby mode (baseline).

Paper: 99.5 % of the time in DRIPS at ~60 mW, 0.5 % active at ~3 W
(display off), periodic ~30 s idle intervals with 100-300 ms kernel
maintenance bursts.
"""

from repro.core.experiments import fig2_connected_standby

from _bench import run_once
from repro.analysis.report import format_table


def test_fig2_connected_standby_average_power(benchmark, emit):
    result = run_once(benchmark, fig2_connected_standby, cycles=2)

    rows = [
        ["DRIPS residency", f"{result.drips_residency:.2%}", "99.5 %"],
        ["DRIPS power", f"{result.drips_power_mw:.1f} mW", "~60 mW"],
        ["Active (C0, display off) power", f"{result.active_power_w:.2f} W", "~3 W"],
        ["connected-standby average", f"{result.average_power_mw:.1f} mW", "~75 mW"],
    ]
    emit(format_table(["quantity", "measured", "paper"], rows,
                      title="Fig. 2 - connected-standby operation (baseline)"))

    assert abs(result.drips_residency - 0.995) < 0.002
    assert abs(result.drips_power_mw - 60.0) < 1.0
    assert abs(result.active_power_w - 3.0) < 0.2
