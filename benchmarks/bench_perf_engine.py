"""Microbenchmarks for the fast-path simulation engine.

Times the four layers the perf PR touched — analyzer closed-form
sampling, indexed trace queries, kernel event throughput, memoized
experiments, and parallel sweeps — and writes the results to
``BENCH_perf.json`` at the repo root so CI can diff them run-over-run.

Run with ``pytest benchmarks/bench_perf_engine.py --benchmark-only``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.check import check_standby_model
from repro.core.experiments import fig2_connected_standby, fig6b_core_frequency
from repro.measure.analyzer import PowerAnalyzer
from repro.obs.tracer import observe
from repro.perf import SimulationCache
from repro.sim.kernel import Kernel
from repro.sim.trace import TraceRecorder
from repro.units import seconds_to_ps, us_to_ps

from _bench import run_once

#: Analyzer fast path must beat the raw-sample reference by at least
#: this factor on a fig2-sized window (ISSUE acceptance criterion).
MIN_ANALYZER_SPEEDUP = 20.0

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

_results: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """Collect per-bench figures and merge them into BENCH_perf.json on
    teardown.  Merging (rather than overwriting) keeps entries from the
    other bench harnesses — and from a partial ``-k`` run of this one —
    alive in the shared file."""
    yield
    if _results:
        payload = {"schema": "repro-bench-perf/1", "benches": {}}
        if BENCH_JSON.exists():
            try:
                payload = json.loads(BENCH_JSON.read_text())
            except (ValueError, OSError):
                pass
        payload["schema"] = "repro-bench-perf/1"
        payload["generated_by"] = "benchmarks/bench_perf_engine.py"
        payload.setdefault("benches", {}).update(_results)
        BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def fig2_sized_trace(cycles: int = 2) -> TraceRecorder:
    """Synthetic ~60 s platform-power step trace (fig2-shaped)."""
    trace = TraceRecorder()
    t = 0
    for _cycle in range(cycles):
        for duration_s, watts in (
            (0.145, 3.04),
            (0.0002, 0.90),
            (29.70, 0.060),
            (0.0003, 1.20),
        ):
            trace.record(t, "platform", watts)
            t += seconds_to_ps(duration_s)
    trace.record(t, "platform", 3.04)
    return trace


def test_analyzer_fast_path_speedup(benchmark, emit):
    """Closed-form measure() vs the per-sample reference path."""
    trace = fig2_sized_trace()
    analyzer = PowerAnalyzer(trace, sampling_interval_ps=us_to_ps(50))
    end_ps = trace.last("platform").time_ps

    t0 = time.perf_counter()
    samples = analyzer.sample_window(0, end_ps)
    slow_s = time.perf_counter() - t0

    reading = run_once(benchmark, analyzer.measure, 0, end_ps)
    fast_s = min(benchmark.stats.stats.data)

    assert reading.samples == len(samples)
    speedup = slow_s / fast_s
    assert speedup >= MIN_ANALYZER_SPEEDUP
    _results["analyzer_fast_path"] = {
        "wall_s": fast_s,
        "reference_wall_s": slow_s,
        "speedup": speedup,
        "grid_samples": reading.samples,
        "samples_per_s": reading.samples / fast_s,
    }
    emit(
        f"analyzer fast path: {fast_s * 1e3:.3f} ms vs reference "
        f"{slow_s * 1e3:.1f} ms ({speedup:.0f}x, {reading.samples} samples)"
    )


def test_trace_indexed_queries(benchmark, emit):
    """bisect-backed value_at over a large multi-channel trace."""
    trace = TraceRecorder()
    for index in range(50_000):
        trace.record(index * 100, f"ch{index % 8}", float(index % 17))
    horizon = 50_000 * 100
    probes = [(f"ch{i % 8}", (i * 7919) % horizon) for i in range(10_000)]

    def query_all():
        for channel, t in probes:
            trace.value_at(channel, t)

    run_once(benchmark, query_all)
    wall_s = min(benchmark.stats.stats.data)
    _results["trace_value_at"] = {
        "wall_s": wall_s,
        "records": len(trace),
        "queries": len(probes),
        "queries_per_s": len(probes) / wall_s,
    }
    emit(f"trace value_at: {len(probes)} queries over {len(trace)} records "
         f"in {wall_s * 1e3:.1f} ms ({len(probes) / wall_s:,.0f}/s)")


def test_kernel_event_throughput(benchmark, emit):
    """Schedule/cancel/fire 100k events; O(1) counters, lazy heap cleanup."""
    def storm():
        kernel = Kernel()
        events = [
            kernel.schedule(10 * (index + 1), lambda: None)
            for index in range(100_000)
        ]
        for event in events[::2]:
            event.cancel()
        fired = kernel.run()
        assert fired == 50_000
        assert kernel.pending_events == 0
        return fired

    fired = run_once(benchmark, storm)
    wall_s = min(benchmark.stats.stats.data)
    _results["kernel_event_throughput"] = {
        "wall_s": wall_s,
        "scheduled": 100_000,
        "fired": fired,
        "events_per_s": 100_000 / wall_s,
    }
    emit(f"kernel: 100k scheduled / 50k cancelled / 50k fired in "
         f"{wall_s * 1e3:.1f} ms ({100_000 / wall_s:,.0f} events/s)")


def test_memoized_experiment_rerun(benchmark, emit):
    """A cache-hit re-measurement skips the simulation entirely."""
    cache = SimulationCache()
    t0 = time.perf_counter()
    cold = fig2_connected_standby(cycles=1, cache=cache)
    cold_s = time.perf_counter() - t0

    warm = run_once(benchmark, fig2_connected_standby, cycles=1, cache=cache)
    warm_s = min(benchmark.stats.stats.data)

    assert warm.average_power_mw == cold.average_power_mw
    assert cache.stats.hits >= 1
    _results["memoized_experiment"] = {
        "wall_s": warm_s,
        "cold_wall_s": cold_s,
        "speedup": cold_s / warm_s,
        "cache_hits": cache.stats.hits,
        "cache_misses": cache.stats.misses,
    }
    emit(f"memoized fig2 rerun: {warm_s * 1e3:.2f} ms vs cold "
         f"{cold_s:.2f} s ({cold_s / warm_s:,.0f}x)")


def test_tracer_overhead_on_fig2(benchmark, emit):
    """repro.obs disabled vs enabled: the off switch must stay near-free.

    With no tracer installed every instrumented seam is one ``obs is
    None`` attribute check; fig2 with tracing disabled must therefore not
    cost more than an observed run beyond a 3% noise budget (the
    observability PR's acceptance criterion), and both figures land in
    BENCH_perf.json so CI can watch the gap.
    """
    def dark():
        return fig2_connected_standby(cycles=1)

    dark()  # warm imports and allocator pools outside both clocks
    enabled_samples = []
    for _ in range(3):
        t0 = time.perf_counter()
        with observe():
            fig2_connected_standby(cycles=1)
        enabled_samples.append(time.perf_counter() - t0)
    enabled_s = min(enabled_samples)

    benchmark.pedantic(dark, rounds=3, iterations=1)
    disabled_s = min(benchmark.stats.stats.data)

    assert disabled_s <= enabled_s * 1.03
    overhead = enabled_s / disabled_s - 1.0
    _results["tracer_overhead_fig2"] = {
        "wall_s": disabled_s,
        "enabled_wall_s": enabled_s,
        "enabled_overhead_frac": overhead,
    }
    emit(f"tracer overhead on fig2: disabled {disabled_s:.2f} s, enabled "
         f"{enabled_s:.2f} s ({overhead:+.1%} when tracing)")


#: The model checker gates every commit, so the exhaustive exploration
#: of the shipped platform must stay interactive, and a rerun with the
#: same config fingerprint must hit the state-space cache instead of
#: exploring again (ISSUE acceptance criteria for the repro.check gate).
MAX_CHECK_COLD_S = 5.0
MIN_CHECK_CACHE_SPEEDUP = 10.0


def test_check_fig2_statespace(benchmark, emit):
    """Exhaustive model check of the standby platform + cached rerun."""
    cache = SimulationCache()
    t0 = time.perf_counter()
    cold = check_standby_model(cache=cache)
    cold_s = time.perf_counter() - t0

    warm = run_once(benchmark, check_standby_model, cache=cache)
    warm_s = min(benchmark.stats.stats.data)

    assert cold.diagnostics == []
    assert cold.state_space["truncated"] is False
    assert warm is cold and cache.stats.hits == 1
    assert cold_s < MAX_CHECK_COLD_S
    speedup = cold_s / warm_s
    assert speedup >= MIN_CHECK_CACHE_SPEEDUP
    _results["check_fig2_statespace"] = {
        "wall_s": warm_s,
        "cold_wall_s": cold_s,
        "speedup": speedup,
        "states_explored": cold.state_space["states_explored"],
        "transitions_taken": cold.state_space["transitions_taken"],
    }
    emit(
        f"model check: {cold.state_space['states_explored']} states explored "
        f"in {cold_s * 1e3:.1f} ms cold, cached rerun {warm_s * 1e6:.0f} µs "
        f"({speedup:,.0f}x)"
    )


def test_check_budgets_statespace(benchmark, emit):
    """Priced-timed budget analysis (``--budgets``): probes + exploration.

    The budget pass prices the transition system with two real probe
    cycles (technique + baseline) on top of the exploration, so it is
    the most expensive flavor of ``repro check``.  It still has to stay
    interactive cold, and a rerun with the same fingerprint must hit the
    cache — the probes are the dominant cost, so the cache matters even
    more here than for the plain check.
    """
    cache = SimulationCache()
    t0 = time.perf_counter()
    cold = check_standby_model(cache=cache, budgets=True)
    cold_s = time.perf_counter() - t0

    warm = run_once(benchmark, check_standby_model, cache=cache, budgets=True)
    warm_s = min(benchmark.stats.stats.data)

    assert cold.diagnostics == []
    assert cold.budgets is not None
    assert "DRIPS" in cold.budgets["deep_states"]
    assert warm is cold and cache.stats.hits == 1
    assert cold_s < MAX_CHECK_COLD_S
    speedup = cold_s / warm_s
    assert speedup >= MIN_CHECK_CACHE_SPEEDUP
    _results["check_budgets_statespace"] = {
        "wall_s": warm_s,
        "cold_wall_s": cold_s,
        "speedup": speedup,
    }
    emit(
        f"budget check: priced analysis in {cold_s * 1e3:.1f} ms cold, "
        f"cached rerun {warm_s * 1e6:.0f} µs ({speedup:,.0f}x)"
    )


#: Parallel fig6b sweep must actually beat the serial run.  At 2 points
#: worker startup ate the win (parallel 3.10 s vs serial 3.02 s); 6
#: points amortize the pool spin-up, and this floor keeps the benchmark
#: honest about it wherever real parallelism exists.
MIN_PARALLEL_SWEEP_SPEEDUP = 1.2

#: Enough sweep points that the process pool pays for itself.
PARALLEL_SWEEP_FREQS = (0.8, 0.9, 1.0, 1.1, 1.2, 1.5)


def test_parallel_sweep_matches_serial(benchmark, emit):
    """fig6b with parallel=True: identical rows, and actually faster.

    The speedup floor only applies where the host can parallelize at
    all: on a single-CPU machine worker processes time-slice one core
    and parallel can never beat serial, so the figure is recorded with a
    ``policy_skip`` marker the regression watchdog honors instead of
    flagging drift.
    """
    import os

    t0 = time.perf_counter()
    serial = fig6b_core_frequency(cycles=1, frequencies_ghz=PARALLEL_SWEEP_FREQS)
    serial_s = time.perf_counter() - t0

    parallel = run_once(
        benchmark, fig6b_core_frequency,
        cycles=1, frequencies_ghz=PARALLEL_SWEEP_FREQS, parallel=True,
    )
    parallel_s = min(benchmark.stats.stats.data)

    assert [(r.parameter, r.average_power_mw) for r in serial] == [
        (r.parameter, r.average_power_mw) for r in parallel
    ]
    speedup = serial_s / parallel_s
    cpu_count = os.cpu_count() or 1
    _results["parallel_sweep_fig6b"] = {
        "wall_s": parallel_s,
        "serial_wall_s": serial_s,
        "speedup": speedup,
        "points": len(serial),
        "cpu_count": cpu_count,
    }
    if cpu_count >= 2:
        assert speedup >= MIN_PARALLEL_SWEEP_SPEEDUP
    else:
        _results["parallel_sweep_fig6b"]["policy_skip"] = (
            "single-CPU host: worker processes time-slice one core, so the "
            "speedup floor does not apply"
        )
    emit(f"fig6b sweep: serial {serial_s:.2f} s, parallel {parallel_s:.2f} s "
         f"({speedup:.2f}x, {len(serial)} points on {cpu_count} CPU(s), "
         "identical rows)")


#: Macro-stepping must make week-long horizons interactive: the compiled
#: run has to beat event-by-event simulation of the same 7-day fig2
#: horizon by at least this factor (ISSUE acceptance criterion; the
#: regress watchdog carries the same floor).
MIN_MACRO_SPEEDUP = 100.0

#: Cycles of the exact reference run.  Simulating all ~20k cycles of the
#: week exactly would take minutes in CI, so the exact cost is measured
#: over this sub-horizon and extrapolated linearly — honest for a DES
#: whose per-cycle work is constant, and recorded as such in the JSON.
MACRO_EXACT_REFERENCE_CYCLES = 200


def test_macro_step_week(benchmark, emit):
    """7 simulated days of fig2: cycle-compiled macro vs event-by-event.

    Three measurements feed the figure: the macro run over the full
    7-day horizon (the benchmarked quantity), an exact run over a
    sub-horizon to price one event-by-event cycle, and a macro run over
    that same sub-horizon to assert the results are equal bit-for-bit —
    average power, per-state energy, dwell times, latencies, and wake
    log all identical, not merely close.
    """
    from repro.config import StandbyWorkloadConfig
    from repro.core.odrips import ODRIPSController
    from repro.sim.macro import cycles_for_horizon

    workload = StandbyWorkloadConfig()
    cycles = cycles_for_horizon(
        7.0, workload.idle_interval_s, workload.maintenance_mean_s
    )

    reference = MACRO_EXACT_REFERENCE_CYCLES
    t0 = time.perf_counter()
    exact = ODRIPSController().measure_raw(cycles=reference)
    exact_reference_s = time.perf_counter() - t0
    macro_reference = ODRIPSController().measure_raw(cycles=reference, macro=True)

    # the differential gate: bit-for-bit, not within-tolerance
    assert macro_reference.average_power_w == exact.average_power_w
    assert macro_reference.residency == exact.residency
    assert macro_reference.entry_latencies_ps == exact.entry_latencies_ps
    assert macro_reference.exit_latencies_ps == exact.exit_latencies_ps
    assert macro_reference.wake_events == exact.wake_events

    result = run_once(
        benchmark, ODRIPSController().measure_raw, cycles=cycles, macro=True
    )
    macro_s = min(benchmark.stats.stats.data)

    assert result.macro is not None
    cycles_compiled = result.macro["cycles_compiled"]
    assert cycles_compiled >= cycles - 10  # nearly the whole week compiled
    exact_week_s = exact_reference_s * (cycles / reference)
    speedup = exact_week_s / macro_s
    assert speedup >= MIN_MACRO_SPEEDUP
    _results["macro_step_week"] = {
        "wall_s": macro_s,
        "horizon_days": 7.0,
        "cycles": cycles,
        "cycles_compiled": cycles_compiled,
        "macro_steps": result.macro["macro_steps"],
        "exact_reference_cycles": reference,
        "exact_reference_wall_s": exact_reference_s,
        "exact_wall_s": exact_week_s,
        "exact_extrapolated": True,
        "speedup": speedup,
    }
    emit(
        f"macro week: {cycles} cycles ({cycles_compiled} compiled) in "
        f"{macro_s * 1e3:.0f} ms vs exact {exact_week_s:.0f} s "
        f"(extrapolated from {reference} cycles, {speedup:,.0f}x; "
        "reference results bit-for-bit equal)"
    )


#: Explaining the same run pair twice must hit the memoized profiles
#: instead of re-simulating (the regress watchdog carries the same
#: floor).  Kept loose: the win is two whole traced simulations.
MIN_EXPLAIN_CACHE_SPEEDUP = 1.5


def test_explain_fig2_delta(benchmark, emit):
    """``repro explain`` on a perturbed fig2 pair: cold vs cache hit.

    Cold builds two traced profiles (base + 20% DRAM self-refresh
    perturbation); the rerun must serve both from the profile cache.
    Also the purity gate for causal attribution: the traced profile's
    scalar digest must equal an *untraced* run's measurement bit-for-bit
    (causal tracing is read-only post-processing), and the
    tracing-disabled cost of the causal seams stays under the existing
    ``tracer_overhead_fig2`` guard asserted above — the seams explain
    shares with the tracer are all behind the same ``obs is None`` check.
    """
    from repro.core.odrips import ODRIPSController
    from repro.obs.diff import explain_simulate

    PERTURB = "dram-self-refresh=1.2"
    cache = SimulationCache()
    t0 = time.perf_counter()
    cold = explain_simulate("fig2", perturb=PERTURB, cycles=1, cache=cache)
    cold_s = time.perf_counter() - t0

    warm = run_once(
        benchmark, explain_simulate, "fig2", perturb=PERTURB, cycles=1, cache=cache
    )
    warm_s = min(benchmark.stats.stats.data)

    assert cache.stats.hits >= 2  # both profiles memoized on the rerun
    assert warm["contributors"] == cold["contributors"]
    top = cold["contributors"][0]
    # the perturbed knob must rank first, deterministically: DRAM
    # self-refresh drains the board rail during steady-idle DRIPS dwell
    assert (top["domain"], top["state"], top["cause"]) == (
        "board", "drips", "steady-idle",
    )

    dark = ODRIPSController().measure(cycles=1)
    assert cold["base"]["metrics"]["average_power_w"] == dark.average_power_w
    assert cold["base"]["metrics"]["drips_residency"] == dark.drips_residency

    speedup = cold_s / warm_s
    assert speedup >= MIN_EXPLAIN_CACHE_SPEEDUP
    _results["explain_fig2_delta"] = {
        "wall_s": warm_s,
        "cold_wall_s": cold_s,
        "speedup": speedup,
        "contributors": len(cold["contributors"]),
        "top_share": top["share"],
        "cache_hits": cache.stats.hits,
    }
    emit(
        f"explain fig2 delta: cold {cold_s:.2f} s, cached {warm_s * 1e3:.1f} ms "
        f"({speedup:,.0f}x); top contributor {top['domain']}/{top['state']}/"
        f"{top['cause']} at {top['share']:.0%}"
    )


#: One shared parse must feed every source-analysis pass.  The floor is
#: deliberately loose (the win is exactly 2x parse work today: dataflow
#: + effects over one ModuleCache); what CI watches is the recorded
#: parse count staying equal to the file count.
MIN_SHARED_PARSE_SPEEDUP = 1.1


def test_shared_parse_feeds_both_source_passes(benchmark, emit):
    """C4xx dataflow + C5xx effects over ONE ModuleCache parse of the tree.

    The check CLI builds a single call graph and hands it to both
    interprocedural passes; re-parsing per pass (the pre-satellite
    behavior) costs one full ``ast.parse`` sweep per extra pass.  The
    bench records the shared parse count (== file count) and the
    speedup over the naive parse-per-pass pipeline.
    """
    from repro.check.callgraph import graph_for_paths
    from repro.check.dataflow import analyze_graph
    from repro.check.effects import analyze_effects_graph
    from repro.lint.astcache import ModuleCache, default_source_root

    root = default_source_root()

    def parse_per_pass():
        for _ in ("dataflow", "effects"):
            graph_for_paths([root], cache=ModuleCache())

    t0 = time.perf_counter()
    parse_per_pass()
    naive_s = time.perf_counter() - t0

    def shared():
        cache = ModuleCache()
        graph = graph_for_paths([root], cache=cache)
        analyze_graph(graph)
        analyze_effects_graph(graph)
        return cache

    cache = run_once(benchmark, shared)
    shared_s = min(benchmark.stats.stats.data)

    files = len(cache)
    assert cache.parse_count == files  # every file parsed exactly once
    t0 = time.perf_counter()
    graph_for_paths([root], cache=ModuleCache())
    one_parse_s = time.perf_counter() - t0
    parse_speedup = naive_s / one_parse_s
    assert parse_speedup >= MIN_SHARED_PARSE_SPEEDUP
    _results["check_shared_parse"] = {
        "wall_s": shared_s,
        "files": files,
        "parse_count": cache.parse_count,
        "parse_per_pass_wall_s": naive_s,
        "single_parse_wall_s": one_parse_s,
        "parse_speedup": parse_speedup,
    }
    emit(
        f"check shared parse: {files} files parsed once "
        f"({one_parse_s * 1e3:.0f} ms) vs once-per-pass "
        f"({naive_s * 1e3:.0f} ms, {parse_speedup:.1f}x); both passes "
        f"end-to-end {shared_s * 1e3:.0f} ms"
    )
